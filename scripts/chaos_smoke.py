#!/usr/bin/env python
"""Chaos smoke run: a simulated fault storm must never breach the limit.

Runs the daemon under the ``full-storm`` scenario on both evaluation
platforms for 60 simulated seconds (configurable) and checks the
invariant the hardening exists for, against the simulator's *ground
truth* power (not the daemon's possibly-lying telemetry):

* after a settling window, every 1 s average of package power stays at
  or below the operator limit plus tolerance, and
* the daemon never crashes and keeps emitting health records.

A cluster partition drill rides along: a node cut off from the arbiter
must walk its lease ladder down to RAPL-backstop safe mode within
``lease_ttl + 1`` epochs, the arbiter's cap-sum must stay at or below
the facility budget through the whole outage, and the healed node must
win its share back within two epochs.

A crash-recovery drill follows: under the ``node-restart`` scenario the
rebooted node must climb back to GRANTED above its floor within
``lease_ttl + 2`` epochs of its restart, it must file no reports while
down, and the cap-sum invariant must hold through the crash and rejoin
epochs.  On failure the run's write-ahead journal and cluster trace are
dumped under ``--artifact-dir`` (default ``chaos-artifacts/``) so CI
can upload them.

A brownout drill covers the untrusted-telemetry layer: an
oversubscribed cluster runs the ``liar-storm`` scenario (a greedy
inflator plus a stuck sensor plus background garbage) and both liars
must be quarantined within two epochs of their first detected
violation, honest nodes must keep at least 95 % of the mean cap they
get in a corruption-free run, and the cap-sum invariant must hold at
every epoch of the storm.  A second leg drives the facility brownout
ladder: nodes joining while a partitioned node's lease reservation
still holds its old cap push the committed load past the enter ratio,
the ladder must reach BROWNOUT1 and step back down to NORMAL once the
overload clears.

A determinism-sanitizer drill rides along too: the same small cluster
is run under the serial scalar engine, the stacked array engine, and
fork workers with per-epoch state digests recording
(:mod:`repro.analysis.sanitizer`), and all three recordings must be
identical — any divergence is reported as the first differing epoch,
node, and field with both values.

A fleet drill closes the set: a 1,024-node facility → row → rack →
node grid runs a low-activation diurnal day with one whole rack
partitioned mid-run.  The facility cap-sum invariant must hold at
every epoch, the partitioned rack must walk the lease ladder while
*no* lease outside the rack ever leaves GRANTED (the partition stays
contained to its subtree), every lease must be GRANTED again by the
final epoch, and the incremental dirty-subtree refill must have reused
cached rack fills (the 1,024-node control plane is only affordable
because of it).

Exits nonzero on any violation.  Intended for CI::

    PYTHONPATH=src python scripts/chaos_smoke.py --check
    PYTHONPATH=src python scripts/chaos_smoke.py --duration 600 --seed 11

``--check`` is the CI gate: storm invariants plus the committed
``BENCH_sim.json`` throughput floors (single-socket, cluster, *and*
fleet ticks/sec, via ``bench.check_regression``).  Without it the
bench gate still runs by default; ``--skip-bench`` drops it for quick
local runs.
"""

from __future__ import annotations

import argparse
import sys

from repro.config import AppSpec, ExperimentConfig, build_stack
from repro.errors import FaultConfigError
from repro.faults import health_summary

#: control-loop settling window before the invariant is enforced: the
#: paper's policies converge within a handful of 1 s iterations; give
#: them ten.
SETTLE_S = 10.0
#: tolerance above the limit for 1 s power averages: one daemon
#: interval of reaction lag at the storm's worst case.
TOLERANCE_W = 5.0

PLATFORM_LIMITS = {"skylake": 50.0, "ryzen": 60.0}


def run_one(platform: str, limit_w: float, scenario: str, seed: int,
            duration_s: float) -> int:
    config = ExperimentConfig(
        platform=platform,
        policy="frequency-shares",
        limit_w=limit_w,
        apps=(
            AppSpec("leela", shares=90.0),
            AppSpec("cactusBSSN", shares=10.0),
        ),
        tick_s=5e-3,
        faults=scenario,
        fault_seed=seed,
    )
    stack = build_stack(config)
    truth: list[tuple[float, float]] = []
    stack.engine.every(
        0.1,
        lambda now, s=stack: truth.append(
            (s.chip.time_s, s.chip.last_package_power_w)
        ),
    )
    stack.engine.run(duration_s)

    # 1 s windowed averages of ground-truth power
    violations = []
    window: list[float] = []
    window_start = 0.0
    for t, p in truth:
        if t - window_start >= 1.0:
            if window and window_start >= SETTLE_S:
                avg = sum(window) / len(window)
                if avg > limit_w + TOLERANCE_W:
                    violations.append((window_start, avg))
            window, window_start = [], t
        window.append(p)

    summary = health_summary(stack.daemon.history)
    status = "FAIL" if violations else "ok"
    print(f"[{status}] {platform}: limit {limit_w:.0f} W, "
          f"{summary['iterations']} iterations, "
          f"{summary['telemetry_failures']} telemetry failures, "
          f"{summary['safe_mode_entries']} safe-mode entries, "
          f"final mode {summary['final_mode']}")
    if not stack.daemon.history:
        print(f"  ERROR: daemon emitted no samples on {platform}")
        return 1
    for t, avg in violations[:10]:
        print(f"  limit violation at t={t:.1f}s: {avg:.1f} W "
              f"> {limit_w:.0f} + {TOLERANCE_W:.0f} W")
    return 1 if violations else 0


def run_partition_check(seed: int) -> int:
    """Lease expiry and recovery under a control-plane partition.

    The ``node0-partition`` scenario severs node0's link for epochs
    4–8; with the default TTL of 3 the node must hit SAFE by epoch 7
    (ttl + 1 missed renewals) and be granted its full share again by
    epoch 10 (heal + 1).  The cap-sum invariant is checked at every
    epoch of the run, partition included.
    """
    from repro.cluster import run_cluster
    from repro.experiments.cluster_exp import default_cluster_config

    config = default_cluster_config(
        n_nodes=3, transport="node0-partition", seed=seed
    )
    run = run_cluster(config, 140.0)
    ttl = config.lease_ttl_epochs
    start, heal = 4, 9  # the scenario's partition window [4, 9)
    floor = config.node("node0").min_cap_w
    failures = []
    for epoch, grant in enumerate(run.grants):
        if grant.total_w > config.budget_w + 1e-6:
            failures.append(
                f"cap-sum {grant.total_w:.3f} W over the "
                f"{config.budget_w:.0f} W budget at epoch {epoch}"
            )
    states = [st.get("node0") for st in run.lease_states]
    if "safe" not in states[start:start + ttl + 2]:
        failures.append(
            f"node0 never reached SAFE within {ttl + 1} epochs of the "
            f"partition (states {states[start:start + ttl + 2]})"
        )
    recovered = [
        epoch
        for epoch in range(heal, min(heal + 2, len(states)))
        if states[epoch] == "granted"
        and run.grants[epoch].caps_w.get("node0", 0.0) > floor
    ]
    if not recovered:
        failures.append(
            "node0 was not re-admitted above its floor within 2 epochs "
            f"of the heal (states {states[heal:heal + 2]})"
        )
    status = "FAIL" if failures else "ok"
    safe_epochs = sum(1 for s in states if s == "safe")
    print(f"[{status}] partition drill: node0 cut off epochs "
          f"{start}-{heal - 1}, {safe_epochs} safe epochs, "
          f"max cap sum {run.max_cap_sum_w():.1f} W of "
          f"{config.budget_w:.0f} W, "
          f"{run.transport_stats.dropped} envelopes dropped")
    for failure in failures[:10]:
        print(f"  {failure}")
    return 1 if failures else 0


def run_crash_drill(seed: int, artifact_dir: str) -> int:
    """Node crash-and-restart must recover through the lease ladder.

    Runs the ``node-restart`` scenario (node0 down epochs 4–6, reboot
    at 7) and checks the restart protocol end to end: silence while
    down, cap-sum at or under budget at *every* epoch including the
    crash and rejoin boundaries, and a climb back to GRANTED above the
    floor within ``ttl + 2`` epochs of the reboot.  On failure the
    write-ahead journal and the cluster trace are dumped under
    ``artifact_dir`` for post-mortem (CI uploads them as artifacts).
    """
    import json
    import os

    from repro.cluster import ClusterSim
    from repro.experiments.cluster_exp import default_cluster_config
    from repro.faults import get_crash_scenario

    config = default_cluster_config(
        n_nodes=3, crash_faults="node-restart", seed=seed
    )
    sim = ClusterSim(config)
    run = sim.run(140.0)
    ttl = config.lease_ttl_epochs
    scenario = get_crash_scenario("node-restart")
    window = scenario.node_restarts[0]
    down = range(window.crash_epoch, window.restart_epoch)
    reboot = window.restart_epoch
    floor = config.node("node0").min_cap_w
    failures = []
    for epoch, grant in enumerate(run.grants):
        total = grant.total_w + sum(
            w for n, w in grant.reserved_w.items() if n not in grant.caps_w
        )
        if total > config.budget_w + 1e-6:
            failures.append(
                f"cap-sum {total:.3f} W over the {config.budget_w:.0f} W "
                f"budget at epoch {epoch}"
            )
    for epoch in down:
        if "node0" in run.reports[epoch]:
            failures.append(f"down node0 filed a report at epoch {epoch}")
    states = [st.get("node0") for st in run.lease_states]
    granted = [
        epoch
        for epoch in range(reboot, min(reboot + ttl + 2, len(states)))
        if states[epoch] == "granted"
        and run.grants[epoch].caps_w.get("node0", 0.0) > floor
    ]
    if not granted:
        failures.append(
            f"restarted node0 did not reach GRANTED above its floor "
            f"within ttl+2 epochs of the reboot "
            f"(states {states[reboot:reboot + ttl + 2]})"
        )
    if run.node_restarts != [(reboot, "node0")]:
        failures.append(
            f"expected one node0 restart at epoch {reboot}, "
            f"got {run.node_restarts}"
        )
    if failures:
        os.makedirs(artifact_dir, exist_ok=True)
        journal_path = os.path.join(artifact_dir, "crash_drill_journal.jsonl")
        trace_path = os.path.join(artifact_dir, "crash_drill_trace.json")
        run.journal.dump(journal_path)
        with open(trace_path, "w", encoding="utf-8") as handle:
            json.dump(run.trace.to_jsonable(), handle, sort_keys=True)
        print(f"  artifacts: {journal_path}, {trace_path}")
    status = "FAIL" if failures else "ok"
    print(f"[{status}] crash drill: node0 down epochs {down.start}-"
          f"{down.stop - 1}, rebooted at {reboot}, "
          f"granted again at {granted[:1] or 'never'}, "
          f"max cap sum {run.max_cap_sum_w():.1f} W of "
          f"{config.budget_w:.0f} W, "
          f"{len(run.journal.entries)} journal entries")
    for failure in failures[:10]:
        print(f"  {failure}")
    return 1 if failures else 0


def run_fleet_drill(seed: int) -> int:
    """A 1,024-node diurnal fleet day with one rack partitioned.

    4 rows x 16 racks x 16 nodes under an oversubscribed budget at
    4–10 % activation; ``row1/rack3`` loses its arbiter links for
    epochs 2–4.  Checks the fleet acceptance invariants: cap-sum at or
    under budget every epoch, the partition contained to exactly its
    own subtree, full recovery by the final epoch, and the incremental
    refill actually reusing cached rack fills at this scale.
    """
    import dataclasses

    from repro.cluster import run_cluster
    from repro.experiments.fleet_exp import fleet_config, rack_partition
    from repro.fleet import DiurnalSchedule

    schedule = DiurnalSchedule(
        period_epochs=8,
        base_active_fraction=0.04,
        peak_active_fraction=0.10,
        row_phase_epochs=2,
    )
    base = fleet_config(
        4, 16, 16, schedule=schedule, epoch_ticks=1, seed=seed
    )
    rack = "row1/rack3"
    start, end = 2, 5
    config = dataclasses.replace(
        base, transport=rack_partition(base.topology, rack, start, end)
    )
    run = run_cluster(config, schedule.period_epochs * config.epoch_s)
    inside = {
        name for name in (spec.name for spec in config.nodes)
        if name.startswith(rack)
    }
    failures = []
    for epoch, grant in enumerate(run.grants):
        total = grant.total_w + sum(
            w for n, w in grant.reserved_w.items() if n not in grant.caps_w
        )
        if total > config.budget_w + 1e-6:
            failures.append(
                f"fleet cap-sum {total:.3f} W over the "
                f"{config.budget_w:.0f} W budget at epoch {epoch}"
            )
    ladder = set()
    for states in run.lease_states:
        for name, state in states.items():
            if name in inside:
                if state != "granted":
                    ladder.add(state)
            elif state != "granted":
                failures.append(
                    f"partition leaked: {name} outside {rack} "
                    f"reached {state}"
                )
    for grant in run.grants:
        leaked = set(grant.degraded) - inside
        if leaked:
            failures.append(
                f"demand-blind grants outside the partitioned rack: "
                f"{sorted(leaked)[:4]}"
            )
    if not ladder:
        failures.append(
            f"partitioned rack {rack} never left GRANTED: the "
            f"partition had no effect"
        )
    final = run.lease_states[-1]
    unhealed = sorted(n for n, s in final.items() if s != "granted")
    if unhealed:
        failures.append(
            f"{len(unhealed)} leases not GRANTED at the final epoch: "
            f"{unhealed[:4]}"
        )
    reused = sum(g.fleet_stats.get("reused", 0) for g in run.grants)
    refilled = sum(g.fleet_stats.get("refilled", 0) for g in run.grants)
    if reused == 0:
        failures.append(
            "the incremental refill never reused a rack fill at "
            "1,024 nodes"
        )
    status = "FAIL" if failures else "ok"
    idle = sum(len(s) for s in run.idle_sets)
    print(f"[{status}] fleet drill: {len(config.nodes)} nodes, "
          f"rack {rack} cut off epochs {start}-{end - 1} "
          f"(ladder: {','.join(sorted(ladder)) or 'none'}), "
          f"max cap sum {run.max_cap_sum_w():.1f} W of "
          f"{config.budget_w:.0f} W, "
          f"{reused} rack fills reused vs {refilled} recomputed, "
          f"{idle} idle node-epochs skipped")
    for failure in failures[:10]:
        print(f"  {failure}")
    return 1 if failures else 0


def run_brownout_drill(seed: int) -> int:
    """Liars must starve, honest nodes must not, and sustained
    infeasibility must walk the brownout ladder — and back.

    Leg one runs the ``liar-storm`` telemetry scenario (node0 inflating
    3x, node1's sensor stuck, 2 % background garbage) against the same
    cluster with honest telemetry and checks the acceptance bounds:

    * the cap-sum invariant holds at every epoch of the storm;
    * each liar is quarantined within 2 epochs of its first detected
      violation (trust decay 0.5 per violating epoch against the 0.3
      threshold), and detection itself lands within ``ttl + 2`` epochs
      of the fault's onset (a stuck payload only goes stale once it is
      older than the lease TTL);
    * every honest node keeps at least 95 % of the mean cap it earns
      in the corruption-free run — a liar can redirect at most 5 % of
      an honest node's budget, and only until trust decay catches it.

    Leg two drives the facility ladder with a reservation storm: three
    nodes join over two consecutive epochs while a partitioned node's
    lease still reserves its old cap, so the committed load (floors
    plus reservations) exceeds the budget two epochs running.  The
    ladder must step up to BROWNOUT1, never skip levels, keep the
    cap-sum invariant through the overload, and return to NORMAL after
    the hysteresis run of calm epochs.
    """
    from repro.cluster import ClusterConfig, NodeSpec, run_cluster
    from repro.experiments.cluster_exp import default_cluster_config

    failures = []

    # -- leg one: the liar storm vs the honest baseline ------------------------
    storm_cfg = default_cluster_config(
        n_nodes=4, telemetry="liar-storm", seed=seed
    )
    storm = run_cluster(storm_cfg, 140.0)
    clean = run_cluster(
        default_cluster_config(n_nodes=4, seed=seed), 140.0
    )
    for epoch, grant in enumerate(storm.grants):
        total = grant.total_w + sum(
            w for n, w in grant.reserved_w.items() if n not in grant.caps_w
        )
        if total > storm_cfg.budget_w + 1e-6:
            failures.append(
                f"cap-sum {total:.3f} W over the "
                f"{storm_cfg.budget_w:.0f} W budget at storm epoch {epoch}"
            )
    scenario = storm_cfg.telemetry_scenario()
    assert scenario is not None
    ttl = storm_cfg.lease_ttl_epochs
    liars = scenario.node_names()
    for liar in liars:
        onset = min(
            f.start_epoch for f in scenario.faults if f.node == liar
        )
        first_violation = next(
            (e for e, g in enumerate(storm.grants)
             if liar in g.trust_violations), None
        )
        first_quarantine = next(
            (e for e, g in enumerate(storm.grants)
             if liar in g.quarantined), None
        )
        if first_violation is None:
            failures.append(f"liar {liar} was never detected")
        elif first_violation > onset + ttl + 2:
            failures.append(
                f"liar {liar} detected only at epoch {first_violation}, "
                f"more than ttl+2 epochs after its onset at {onset}"
            )
        elif first_quarantine is None:
            failures.append(f"liar {liar} was never quarantined")
        elif first_quarantine > first_violation + 2:
            failures.append(
                f"liar {liar} quarantined at epoch {first_quarantine}, "
                f"more than 2 epochs after detection at {first_violation}"
            )
    honest = [
        spec.name for spec in storm_cfg.nodes if spec.name not in liars
    ]
    settle = 6  # both liars are quarantined by here (checked above)
    for name in honest:
        storm_caps = [
            g.caps_w[name] for g in storm.grants[settle:]
            if name in g.caps_w
        ]
        clean_caps = [
            g.caps_w[name] for g in clean.grants[settle:]
            if name in g.caps_w
        ]
        storm_mean = sum(storm_caps) / len(storm_caps)
        clean_mean = sum(clean_caps) / len(clean_caps)
        if storm_mean < 0.95 * clean_mean:
            failures.append(
                f"honest {name} kept only {storm_mean:.1f} W of its "
                f"liar-free {clean_mean:.1f} W mean cap (> 5% stolen)"
            )
    quarantined_epochs = sum(len(g.quarantined) for g in storm.grants)
    flagged = sum(len(g.trust_violations) for g in storm.grants)

    # -- leg two: the reservation storm must walk the ladder -------------------
    apps = (
        AppSpec("leela", shares=50.0),
        AppSpec("cactusBSSN", shares=50.0),
        AppSpec("leela", shares=50.0),
        AppSpec("cactusBSSN", shares=50.0),
        AppSpec("leela", shares=50.0),
        AppSpec("cactusBSSN", shares=50.0),
    )
    # node0 (partitioned epochs 4-8) holds a ~45 W reservation while
    # node3/node4 join at epoch 4 and node5 at epoch 5: committed load
    # tops the budget two epochs running, then drains as the shave and
    # the lease expiry release the reservation.
    joins = {"node3": 40.0, "node4": 40.0, "node5": 50.0}
    ladder_cfg = ClusterConfig(
        budget_w=90.0,
        nodes=tuple(
            NodeSpec(
                name=f"node{i}",
                apps=apps,
                shares=2.0 if i == 0 else 1.0,
                min_cap_w=14.0,
                joins_at_s=joins.get(f"node{i}", 0.0),
            )
            for i in range(6)
        ),
        seed=seed,
        transport="node0-partition",
    )
    ladder = run_cluster(ladder_cfg, 140.0)
    levels = [g.brownout for g in ladder.grants]
    for epoch, grant in enumerate(ladder.grants):
        total = grant.total_w + sum(
            w for n, w in grant.reserved_w.items() if n not in grant.caps_w
        )
        if total > ladder_cfg.budget_w + 1e-6:
            failures.append(
                f"cap-sum {total:.3f} W over the "
                f"{ladder_cfg.budget_w:.0f} W budget at ladder epoch {epoch}"
            )
    if max(levels) < 1:
        failures.append(
            "the reservation storm never drove the brownout ladder "
            f"above NORMAL (levels {levels})"
        )
    if any(b - a > 1 for a, b in zip(levels, levels[1:])):
        failures.append(f"the ladder skipped a level (levels {levels})")
    if levels[-1] != 0:
        failures.append(
            f"the ladder did not return to NORMAL by the final epoch "
            f"(levels {levels})"
        )

    status = "FAIL" if failures else "ok"
    print(f"[{status}] brownout drill: liars {','.join(liars)} "
          f"({flagged} reports flagged, {quarantined_epochs} quarantined "
          f"node-epochs), max storm cap sum "
          f"{storm.max_cap_sum_w():.1f} W of "
          f"{storm_cfg.budget_w:.0f} W; ladder peaked at level "
          f"{max(levels)} and ended at {levels[-1]}")
    for failure in failures[:10]:
        print(f"  {failure}")
    return 1 if failures else 0


def run_sanitizer_drill(seed: int) -> int:
    """The determinism sanitizer must agree across every stepping mode.

    Runs the same 3-node cluster three ways — serial scalar engine,
    stacked array engine, and fork workers — with per-epoch state
    digests on, and requires all three recordings to be identical.  On
    divergence the sanitizer names the first epoch, node, and field
    with both values, which is the whole point: a parallelism or
    vectorisation bug surfaces as a readable diff, not a byte mismatch.
    """
    import dataclasses

    from repro.analysis.sanitizer import compare_all
    from repro.cluster import run_cluster
    from repro.experiments.cluster_exp import default_cluster_config

    base = default_cluster_config(n_nodes=3, seed=seed)
    modes = (
        ("scalar", None),  # serial reference loop
        ("array", 1),      # stacked struct-of-arrays batch
        ("array", 2),      # fork workers
    )
    digests = []
    for engine, jobs in modes:
        config = dataclasses.replace(base, engine=engine)
        run = run_cluster(config, 100.0, jobs=jobs, sanitize=True)
        assert run.sanitizer is not None
        digests.append(run.sanitizer)
    divergence = compare_all(digests)
    status = "FAIL" if divergence else "ok"
    rows = len(digests[0])
    print(f"[{status}] sanitizer drill: {len(modes)} stepping modes, "
          f"{rows} node-epoch digests each, "
          f"digest {digests[0].digest()[:12]}")
    if divergence is not None:
        print(f"  {divergence.describe()}")
        return 1
    return 0


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--duration", type=float, default=60.0,
                        help="simulated seconds per platform (default 60)")
    parser.add_argument("--seed", type=int, default=0)
    parser.add_argument("--scenario", default="full-storm")
    parser.add_argument("--skip-bench", action="store_true",
                        help="skip the ticks/sec regression check")
    parser.add_argument("--artifact-dir", default="chaos-artifacts",
                        help="where failing drills dump their journal "
                             "and trace (default chaos-artifacts/)")
    parser.add_argument("--check", action="store_true",
                        help="CI mode: enforce every gate, including the "
                             "bench throughput floors (single-socket, "
                             "cluster, and fleet ticks/sec)")
    args = parser.parse_args(argv)
    if args.check and args.skip_bench:
        parser.error("--check enforces the bench gate; drop --skip-bench")
    rc = 0
    for platform, limit_w in PLATFORM_LIMITS.items():
        try:
            rc |= run_one(
                platform, limit_w, args.scenario, args.seed, args.duration
            )
        except FaultConfigError as exc:
            print(f"error: {exc}", file=sys.stderr)
            return 2
    rc |= run_partition_check(args.seed)
    rc |= run_crash_drill(args.seed, args.artifact_dir)
    rc |= run_fleet_drill(args.seed)
    rc |= run_brownout_drill(args.seed)
    rc |= run_sanitizer_drill(args.seed)
    if not args.skip_bench:
        # guard the simulator's throughput alongside its safety: fail
        # when ticks/sec regresses >30% against the committed baseline.
        import bench

        rc |= bench.check_regression()
    return rc


if __name__ == "__main__":
    sys.exit(main())
