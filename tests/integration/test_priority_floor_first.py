"""Integration tests for the floor-first priority variant (section 4.1)."""

import pytest

from repro.core.daemon import PowerDaemon
from repro.core.priority import PriorityConfig, PriorityPolicy
from repro.core.types import ManagedApp, Priority
from repro.hw.platform import get_platform
from repro.sched.pinning import pin_apps
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.workloads.spec import spec_app


def build(floor_first, limit_w=40.0, n_hp=3, n_lp=7):
    platform = get_platform("skylake")
    chip = Chip(platform, tick_s=5e-3)
    engine = SimEngine(chip)
    apps = (
        [spec_app("cactusBSSN", steady=True)] * n_hp
        + [spec_app("leela", steady=True)] * n_lp
    )
    placements = pin_apps(chip, apps)
    managed = [
        ManagedApp(
            label=p.label, core_id=p.core_id,
            priority=Priority.HIGH if i < n_hp else Priority.LOW,
        )
        for i, p in enumerate(placements)
    ]
    policy = PriorityPolicy(
        platform, managed, limit_w,
        priority_config=PriorityConfig(floor_first=floor_first),
    )
    daemon = PowerDaemon(chip, policy)
    daemon.attach(engine)
    return engine, daemon, policy


class TestFloorFirst:
    def test_lp_never_parked(self):
        engine, daemon, policy = build(floor_first=True)
        engine.run(30.0)
        assert all(
            not parked
            for s in daemon.history
            for parked in s.app_parked.values()
        )

    def test_hp_still_prioritised_over_lp(self):
        engine, daemon, _ = build(floor_first=True)
        engine.run(30.0)
        record = daemon.history[-1]
        assert (
            record.app_frequency_mhz["cactusBSSN#0"]
            > record.app_frequency_mhz["leela#0"]
        )

    def test_limit_enforced(self):
        engine, daemon, _ = build(floor_first=True)
        engine.run(35.0)
        tail = [s.package_power_w for s in daemon.history[-8:]]
        assert sum(tail) / len(tail) <= 41.5

    def test_default_variant_starves_same_mix(self):
        engine, daemon, policy = build(floor_first=False)
        engine.run(30.0)
        assert policy.state == "starved"

    def test_floor_first_with_ample_power_matches_default(self):
        """At a slack limit both variants run everything flat out."""
        results = {}
        for mode in (False, True):
            engine, daemon, _ = build(
                floor_first=mode, limit_w=85.0, n_hp=2, n_lp=2
            )
            engine.run(20.0)
            record = daemon.history[-1]
            results[mode] = record.app_frequency_mhz["leela#0"]
        assert results[True] == pytest.approx(results[False], rel=0.05)
