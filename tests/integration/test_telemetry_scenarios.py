"""Integration tests: the cluster under corrupted telemetry.

The acceptance criteria of the untrusted-telemetry work, end to end on
real simulated nodes, for every curated scenario in
:data:`~repro.faults.telemetry.TELEMETRY_SCENARIOS`:

* the cap-sum invariant holds every epoch and no non-finite value ever
  reaches a grant — a lie can corrupt one node's claim, never the
  facility envelope;
* honest nodes' delivered power stays within 5 % of the corruption-free
  run under the ``liar-storm`` acceptance scenario;
* offenders are quarantined within the documented bound (two violating
  epochs of first detection) and recover trust after a bounded fault;
* a partitioned node is never double-penalized: silence is the lease
  ladder's jurisdiction, so trust scores are judged only on delivered
  fresh reports;
* serial and fork-parallel stepping stay byte-identical, and crash
  recovery from the journal replays trust decisions byte-identically.
"""

import functools
import json
import math

import pytest

from repro.cluster import recover_cluster_sim, run_cluster
from repro.cluster.journal import Journal
from repro.experiments.cluster_exp import default_cluster_config
from repro.faults.telemetry import TELEMETRY_SCENARIOS

pytestmark = pytest.mark.partition

DURATION_S = 140.0  # 14 epochs at the default cadence
WARMUP_S = 40.0
BUDGET_W = 150.0
SLACK_W = 1e-9


def telemetry_config(scenario, *, seed=0, transport=None):
    return default_cluster_config(
        n_nodes=4, telemetry=scenario, transport=transport, seed=seed
    )


@functools.lru_cache(maxsize=None)
def cached_run(scenario, seed=0, transport=None):
    """One full run per config, shared across tests (runs are pure
    functions of the config, so sharing cannot couple tests)."""
    return run_cluster(
        telemetry_config(scenario, seed=seed, transport=transport),
        DURATION_S,
    )


def trace_bytes(run) -> bytes:
    return json.dumps(run.trace.to_jsonable(), sort_keys=True).encode()


def grants_of(run):
    return [grant.caps_w for grant in run.grants]


class TestInvariants:
    @pytest.mark.parametrize("scenario", sorted(TELEMETRY_SCENARIOS))
    def test_cap_sum_holds_every_epoch(self, scenario):
        run = cached_run(scenario)
        assert run.max_cap_sum_w() <= BUDGET_W + SLACK_W
        for grant in run.grants:
            assert grant.total_w <= BUDGET_W + SLACK_W

    @pytest.mark.parametrize("scenario", sorted(TELEMETRY_SCENARIOS))
    def test_no_nan_ever_reaches_a_grant(self, scenario):
        run = cached_run(scenario)
        for grant in run.grants:
            for cap in grant.caps_w.values():
                assert math.isfinite(cap) and cap > 0

    def test_quiet_scenario_matches_no_telemetry_config(self):
        # telemetry="none" is byte-identical to no telemetry at all:
        # the defense layer is exactly free on an honest fleet
        quiet = cached_run("none")
        bare = run_cluster(
            default_cluster_config(n_nodes=4, seed=0), DURATION_S
        )
        assert trace_bytes(quiet) == trace_bytes(bare)
        assert grants_of(quiet) == grants_of(bare)


class TestHonestNodesProtected:
    def test_liar_storm_honest_power_within_five_percent(self):
        clean = cached_run("none")
        storm = cached_run("liar-storm")
        # node0 inflates, node1 sticks; node2/node3 are honest
        for name in ("node2", "node3"):
            clean_mean = clean.trace.node_mean_power_w(
                name, after_s=WARMUP_S
            )
            storm_mean = storm.trace.node_mean_power_w(
                name, after_s=WARMUP_S
            )
            # one-sided: the defense may hand honest nodes *more*
            # budget (the liar is quarantined to its floor), it must
            # not starve them by more than 5 %
            assert storm_mean >= 0.95 * clean_mean

    def test_greedy_node_cannot_hold_its_inflated_cap(self):
        run = cached_run("greedy-node")
        caps = [g.caps_w["node0"] for g in run.grants]
        spec = run.config.nodes[0]
        # once quarantined, the liar's demand is pinned at its floor
        quarantined_epochs = [
            g.epoch for g in run.grants if "node0" in g.quarantined
        ]
        assert quarantined_epochs
        for epoch in quarantined_epochs:
            assert caps[epoch] <= spec.min_cap_w + SLACK_W


class TestQuarantineBound:
    @pytest.mark.parametrize(
        "scenario", ["greedy-node", "flapping-demand", "liar-storm"]
    )
    def test_offender_quarantined_within_two_violating_epochs(
        self, scenario
    ):
        run = cached_run(scenario)
        first_violation = next(
            g.epoch
            for g in run.grants
            if "node0" in g.trust_violations
        )
        first_quarantine = next(
            g.epoch for g in run.grants if "node0" in g.quarantined
        )
        assert first_quarantine <= first_violation + 2

    def test_nan_burst_recovers_trust_after_the_fault(self):
        # the burst ends at epoch 8; the tail must see node0 back in
        # the fill (clean epochs first serve probation, then recover)
        run = cached_run("nan-burst")
        last_grant = run.grants[-1]
        assert "node0" not in last_grant.trust_violations
        burst = [g for g in run.grants if 4 <= g.epoch < 8]
        assert any("node0" in g.trust_violations for g in burst)


class TestNoDoublePenalty:
    def test_partition_alone_never_dents_trust(self):
        # node0 is cut off for epochs [4, 9): the lease ladder handles
        # the silence; trust must stay untouched for the whole run
        run = cached_run("none", transport="node0-partition")
        for grant in run.grants:
            assert grant.trust_violations == {}
            assert grant.quarantined == ()

    def test_partitioned_liar_is_not_judged_while_silent(self):
        # node0 inflates from epoch 2 AND is partitioned [4, 9): trust
        # verdicts may only land on epochs where a fresh report was
        # actually delivered
        run = cached_run("greedy-node", transport="node0-partition")
        for grant in run.grants:
            if 4 <= grant.epoch < 9:
                assert "node0" not in grant.trust_violations
        # detection happened before the partition...
        assert any(
            "node0" in g.trust_violations
            for g in run.grants
            if g.epoch < 4
        )
        # ...and the frozen score still quarantines after the heal
        assert any(
            "node0" in g.quarantined
            for g in run.grants
            if g.epoch >= 9
        )

    def test_honest_nodes_never_flagged(self):
        for scenario in ("greedy-node", "stuck-sensor", "nan-burst"):
            run = cached_run(scenario)
            for grant in run.grants:
                for name in ("node2", "node3"):
                    assert name not in grant.trust_violations
                    assert name not in grant.quarantined


class TestDeterminism:
    @pytest.mark.parametrize("scenario", sorted(TELEMETRY_SCENARIOS))
    def test_serial_and_parallel_byte_identical(self, scenario):
        config = telemetry_config(scenario, seed=5)
        serial = run_cluster(config, DURATION_S)
        parallel = run_cluster(config, DURATION_S, jobs=2)
        assert trace_bytes(serial) == trace_bytes(parallel)
        assert grants_of(serial) == grants_of(parallel)
        assert serial.journal.to_jsonl() == parallel.journal.to_jsonl()

    def test_reseeded_garbage_changes_the_schedule(self):
        a = cached_run("liar-storm", seed=0)
        b = cached_run("liar-storm", seed=1)
        assert trace_bytes(a) != trace_bytes(b)


class TestCrashReplay:
    def _truncate_at_fence(self, journal, epoch):
        kept = Journal()
        for entry in journal.entries:
            kept.append(entry.kind, entry.epoch, entry.data)
            if entry.kind == "fence" and entry.epoch == epoch:
                break
        return kept

    @pytest.mark.parametrize("fence", [3, 7])
    @pytest.mark.parametrize(
        "scenario", ["liar-storm", "nan-burst", "stuck-sensor"]
    )
    def test_replay_continues_trust_decisions_byte_identically(
        self, scenario, fence
    ):
        config = telemetry_config(scenario, seed=3)
        full = cached_run(scenario, seed=3)
        journal = self._truncate_at_fence(full.journal, fence)
        sim, nxt = recover_cluster_sim(config, journal)
        assert nxt == fence + 1
        tail = sim.run(DURATION_S, start_epoch=nxt)
        assert grants_of(tail) == grants_of(full)[nxt:]
        assert tail.reports == full.reports[nxt:]
        # trust verdicts and quarantine sets replay exactly
        assert [
            (g.trust_violations, g.quarantined, g.brownout)
            for g in tail.grants
        ] == [
            (g.trust_violations, g.quarantined, g.brownout)
            for g in full.grants[nxt:]
        ]
