"""Integration tests: RAPL interference effects (Figs 1, 4, 5)."""

import pytest

from repro.hw.platform import get_platform
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad, ClusterCoreLoad
from repro.sim.engine import SimEngine
from repro.sched.pinning import pin_apps
from repro.workloads.app import RunningApp
from repro.workloads.cpuburn import cpuburn
from repro.workloads.spec import spec_app
from repro.workloads.websearch import WebsearchCluster, WebsearchConfig

TICK = 5e-3


class TestFig1Shape:
    def test_rapl_throttles_low_demand_app_more(self):
        """gcc (fast, low demand) loses relatively more frequency than
        cam4 (slow, high demand) under a binding RAPL limit."""
        platform = get_platform("skylake")
        chip = Chip(platform, tick_s=TICK)
        engine = SimEngine(chip)
        apps = [spec_app("gcc", steady=True)] * 5 + [
            spec_app("cam4", steady=True)
        ] * 5
        placements = pin_apps(chip, apps)
        for p in placements:
            top = platform.effective_max_frequency_mhz(p.app.model.uses_avx)
            chip.set_requested_frequency(
                p.core_id, platform.pstates.quantize(top).frequency_mhz
            )
        chip.set_rapl_limit(50.0)
        engine.run(20.0)
        gcc_freq = chip.effective_frequency(0)
        cam4_freq = chip.effective_frequency(5)
        gcc_loss = 1 - gcc_freq / 3000.0
        cam4_loss = 1 - cam4_freq / 1700.0
        assert gcc_loss > cam4_loss

    def test_both_converge_to_cap_at_low_limit(self):
        platform = get_platform("skylake")
        chip = Chip(platform, tick_s=TICK)
        engine = SimEngine(chip)
        apps = [spec_app("gcc", steady=True)] * 5 + [
            spec_app("cam4", steady=True)
        ] * 5
        pin_apps(chip, apps)
        for core_id in range(10):
            chip.set_requested_frequency(core_id, 1700.0 if core_id >= 5
                                         else 3000.0)
        chip.set_rapl_limit(40.0)
        engine.run(25.0)
        assert chip.effective_frequency(0) == pytest.approx(
            chip.effective_frequency(5), rel=0.02
        )


class TestFig4Shape:
    def _run(self, throttle_mhz, limit=50.0):
        platform = get_platform("skylake")
        chip = Chip(platform, tick_s=TICK)
        engine = SimEngine(chip)
        pin_apps(chip, [spec_app("gcc", steady=True)] * 10)
        for core_id in range(5):
            chip.set_requested_frequency(core_id, 2500.0)
        for core_id in range(5, 10):
            chip.set_requested_frequency(core_id, throttle_mhz)
        chip.set_rapl_limit(limit)
        engine.run(15.0)
        return chip

    def test_saved_power_speeds_up_unconstrained_cores(self):
        free = self._run(2500.0).effective_frequency(0)
        boosted = self._run(800.0).effective_frequency(0)
        assert boosted > free

    def test_rapl_only_reduces_the_fastest_cores(self):
        chip = self._run(1200.0)
        # throttled cores keep their software set-point
        assert chip.effective_frequency(7) == pytest.approx(1200.0)
        # unconstrained cores get clipped below their request
        assert chip.effective_frequency(0) < 2500.0

    def test_limit_enforced(self):
        chip = self._run(1600.0, limit=40.0)
        assert chip.last_package_power_w <= 42.0


class TestFig5Shape:
    def _latency(self, colocated, limit):
        platform = get_platform("skylake")
        chip = Chip(platform, tick_s=2e-3)
        engine = SimEngine(chip)
        cluster = WebsearchCluster(
            list(range(9)), WebsearchConfig(n_users=300, seed=5)
        )
        chip.attach_cluster(cluster)
        for core_id in cluster.core_ids:
            chip.assign_load(core_id, ClusterCoreLoad(cluster, core_id))
            chip.set_requested_frequency(core_id, 3000.0)
        if colocated:
            chip.assign_load(
                9, BatchCoreLoad(RunningApp(cpuburn()), 2200.0)
            )
            chip.set_requested_frequency(9, 3000.0)
        chip.set_rapl_limit(limit)
        engine.run(10.0)
        cluster.reset_latency_window()
        engine.run(20.0)
        return cluster.latency_percentile(90.0)

    def test_power_virus_inflates_tail_latency(self):
        alone = self._latency(False, 40.0)
        together = self._latency(True, 40.0)
        assert together > alone * 1.25

    def test_no_interference_at_high_limit(self):
        alone = self._latency(False, 85.0)
        together = self._latency(True, 85.0)
        assert together == pytest.approx(alone, rel=0.15)
