"""Ten-minute chaos soak runs — the acceptance criterion.

A 10-minute simulated run on each platform with MSR fault rates at or
above 5% must never exceed the power limit beyond the settling
tolerance, never crash the daemon, and produce deterministic health
records for a fixed seed.

These are marked ``soak`` and skipped by default so tier-1 stays fast::

    PYTHONPATH=src python -m pytest tests/integration/test_chaos_soak.py --soak
"""

import dataclasses

import pytest

from repro.config import AppSpec, ExperimentConfig, build_stack
from repro.faults import health_summary

SETTLE_S = 10.0
TOLERANCE_W = 5.0
SOAK_S = 600.0

LIMITS = {"skylake": 50.0, "ryzen": 60.0}

pytestmark = pytest.mark.soak


def storm_config(platform, scenario, *, seed=0):
    return ExperimentConfig(
        platform=platform,
        policy="frequency-shares",
        limit_w=LIMITS[platform],
        apps=(
            AppSpec("leela", shares=90.0),
            AppSpec("cactusBSSN", shares=10.0),
        ),
        tick_s=1e-2,
        faults=scenario,
        fault_seed=seed,
    )


def run_storm(config, duration_s=SOAK_S):
    stack = build_stack(config)
    truth = []
    stack.engine.every(
        0.1,
        lambda now, s=stack: truth.append(
            (s.chip.time_s, s.chip.last_package_power_w)
        ),
    )
    stack.engine.run(duration_s)
    return stack, truth


def windowed_violations(truth, limit_w):
    violations = []
    window, window_start = [], 0.0
    for t, p in truth:
        if t - window_start >= 1.0:
            if window and window_start >= SETTLE_S:
                avg = sum(window) / len(window)
                if avg > limit_w + TOLERANCE_W:
                    violations.append((window_start, avg))
            window, window_start = [], t
        window.append(p)
    return violations


@pytest.mark.parametrize("platform", ["skylake", "ryzen"])
@pytest.mark.parametrize("scenario", ["flaky-msr", "full-storm"])
def test_ten_minute_storm_never_breaches_limit(platform, scenario):
    # flaky-msr is exactly the acceptance floor: 5% read and write
    # failure rates; full-storm layers everything else on top
    stack, truth = run_storm(storm_config(platform, scenario))
    assert windowed_violations(truth, LIMITS[platform]) == []
    summary = health_summary(stack.daemon.history)
    assert summary["iterations"] >= 0.75 * SOAK_S
    assert summary["contained_errors"] > 0


@pytest.mark.parametrize("platform", ["skylake", "ryzen"])
def test_soak_health_records_deterministic(platform):
    def histories():
        stack, _ = run_storm(
            storm_config(platform, "full-storm", seed=11), 120.0
        )
        return [dataclasses.asdict(r.health) for r in stack.daemon.history]

    assert histories() == histories()
