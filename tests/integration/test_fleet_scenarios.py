"""Integration tests for fleet-scale hierarchical arbitration.

The acceptance criteria of the fleet layer, end to end on real
simulated nodes: byte-identical traces across serial/stacked/fork
stepping, a rack-level partition degrading exactly its own subtree,
idle nodes never building simulation stacks, arbiter crashes invisible
through the fleet caches, and the experiment + CLI wiring.
"""

import functools
import json

import pytest

from repro.cli import main
from repro.cluster import ClusterSim, run_cluster
from repro.experiments.cluster_exp import (
    cluster_result_from_jsonable,
    cluster_result_to_jsonable,
)
from repro.experiments.fleet_exp import (
    fleet_config,
    fleet_rollup,
    oversubscription_report,
    rack_partition,
    run_fleet_experiment,
)
from repro.fleet import DiurnalSchedule

pytestmark = pytest.mark.partition

#: 2 rows x 2 racks x 2 nodes: small enough for tier-1, deep enough
#: that budget flows through two interior levels.
GRID = dict(rows=2, racks_per_row=2, nodes_per_rack=2)
SCHEDULE = DiurnalSchedule(
    period_epochs=8,
    base_active_fraction=0.5,
    peak_active_fraction=1.0,
    row_phase_epochs=1,
)


def tiny_fleet(**kwargs):
    kwargs.setdefault("schedule", SCHEDULE)
    kwargs.setdefault("epoch_ticks", 2)
    return fleet_config(**GRID, **kwargs)


def duration_of(config, periods=1.0):
    return periods * SCHEDULE.period_epochs * config.epoch_s


def trace_bytes(run) -> bytes:
    return json.dumps(run.trace.to_jsonable(), sort_keys=True).encode()


@functools.lru_cache(maxsize=None)
def cached_clean_run():
    config = tiny_fleet()
    return run_cluster(config, duration_of(config))


class TestDeterminism:
    def test_serial_scalar_matches_stacked_array(self):
        scalar = tiny_fleet(engine="scalar")
        array = tiny_fleet(engine="array")
        a = run_cluster(scalar, duration_of(scalar))
        b = run_cluster(array, duration_of(array))
        assert trace_bytes(a) == trace_bytes(b)
        assert [g.caps_w for g in a.grants] == [g.caps_w for g in b.grants]
        assert a.idle_sets == b.idle_sets

    def test_serial_matches_fork_parallel(self):
        config = tiny_fleet()
        serial = cached_clean_run()
        fork = run_cluster(config, duration_of(config), jobs=2)
        assert trace_bytes(serial) == trace_bytes(fork)
        assert serial.grants == fork.grants

    def test_two_runs_byte_identical(self):
        config = tiny_fleet()
        assert trace_bytes(run_cluster(config, duration_of(config))) == (
            trace_bytes(cached_clean_run())
        )


class TestInvariant:
    def test_cap_sum_bounded_every_epoch(self):
        run = cached_clean_run()
        budget = run.config.budget_w
        for grant in run.grants:
            assert grant.total_w <= budget + 1e-6

    def test_fleet_stats_flow_into_grants_and_trace(self):
        run = cached_clean_run()
        assert any(g.fleet_stats.get("reused", 0) > 0 for g in run.grants)
        assert "fleet.reused" in run.trace
        assert "fleet.idle" in run.trace


PARTITIONED_RACK = "row1/rack0"


@functools.lru_cache(maxsize=None)
def cached_partitioned_run():
    topology = tiny_fleet().topology
    scenario = rack_partition(topology, PARTITIONED_RACK, 2, 5)
    config = tiny_fleet(transport=scenario)
    return run_cluster(config, duration_of(config))


class TestRackPartition:
    RACK = PARTITIONED_RACK

    def partitioned_run(self):
        return cached_partitioned_run()

    def test_partitioned_rack_walks_the_lease_ladder(self):
        run = self.partitioned_run()
        inside = {
            name for name in (s.name for s in run.config.nodes)
            if name.startswith(self.RACK)
        }
        degraded_states = set()
        for states in run.lease_states:
            for name, state in states.items():
                if name in inside:
                    degraded_states.add(state)
        assert degraded_states - {"granted"}  # the ladder engaged

    def test_partition_contained_to_its_subtree(self):
        run = self.partitioned_run()
        inside = {
            name for name in (s.name for s in run.config.nodes)
            if name.startswith(self.RACK)
        }
        # every other node's lease never leaves GRANTED...
        for states in run.lease_states:
            for name, state in states.items():
                if name not in inside:
                    assert state == "granted"
        # ...and every demand-blind grant named a partitioned node
        for grant in run.grants:
            assert set(grant.degraded) <= inside

    def test_rack_recovers_after_the_heal(self):
        run = self.partitioned_run()
        final = run.lease_states[-1]
        for name in (s.name for s in run.config.nodes):
            assert final[name] == "granted"

    def test_invariant_holds_through_the_partition(self):
        run = self.partitioned_run()
        for grant in run.grants:
            assert grant.total_w <= run.config.budget_w + 1e-6


class TestIdleSkipping:
    def test_always_idle_nodes_never_build_stacks(self):
        # constant 50% activation: the second half of each rack is
        # idle every epoch and must never pay stack construction
        config = tiny_fleet(schedule=DiurnalSchedule(
            period_epochs=8,
            base_active_fraction=0.5,
            peak_active_fraction=0.5,
            row_phase_epochs=0,
        ))
        sim = ClusterSim(config)
        # hold the stepper: sim.run() releases it when the run ends
        stepper = sim._ensure_stepper()
        run = sim.run(duration_of(config))
        always_idle = set.intersection(
            *(set(idle) for idle in run.idle_sets)
        )
        assert always_idle  # half the fleet never woke
        by_name = {node.spec.name: node for node in stepper.nodes}
        for name in always_idle:
            assert by_name[name].stack is None
        active = set(by_name) - always_idle
        for name in active:
            assert by_name[name].stack is not None

    def test_idle_reports_are_synthetic_and_lease_preserving(self):
        run = cached_clean_run()
        assert run.idle_sets and any(run.idle_sets)
        spec = run.config.nodes[0]
        idle_power = 0.6 * spec.min_cap_w
        for reports, idle in zip(run.reports, run.idle_sets):
            for name in idle:
                report = reports[name]
                assert report.mean_power_w == pytest.approx(idle_power)
                assert report.throttle_pressure == 0.0
                assert report.samples == run.config.epoch_ticks
        # synthetic reports keep leases GRANTED: idle is not a fault
        for states, idle in zip(run.lease_states, run.idle_sets):
            for name in idle:
                assert states[name] == "granted"


class TestCrashRecovery:
    def test_arbiter_crash_is_invisible_through_fleet_caches(self):
        clean = cached_clean_run()
        config = tiny_fleet(crash_faults="arbiter-crash")
        crashed = run_cluster(config, duration_of(config))
        assert crashed.crash_recoveries == 1
        assert [g.caps_w for g in crashed.grants] == (
            [g.caps_w for g in clean.grants]
        )
        assert [g.fleet_stats for g in crashed.grants] == (
            [g.fleet_stats for g in clean.grants]
        )
        assert crashed.reports == clean.reports
        a = clean.trace.to_jsonable()
        b = crashed.trace.to_jsonable()
        differing = sorted(
            k for k in set(a) | set(b) if a.get(k) != b.get(k)
        )
        assert differing == ["cluster.crash_recoveries"]


class TestExperimentWiring:
    def test_experiment_summary_and_cache_round_trip(self):
        config = tiny_fleet()
        result = run_fleet_experiment(config)
        assert result.cap_violations == 0
        assert 0.0 <= result.slo_attainment <= 1.0
        assert result.idle_node_epochs > 0
        assert result.fleet_reused > 0
        rows = fleet_rollup(result)
        assert [r["domain"] for r in rows] == ["row0", "row1"]
        assert sum(r["nodes"] for r in rows) == len(config.nodes)
        wire = json.loads(json.dumps(cluster_result_to_jsonable(result)))
        assert cluster_result_from_jsonable(wire) == result

    def test_oversubscription_report_is_consistent(self):
        # the default diurnal day never activates the whole fleet, so
        # the auto-sized budget genuinely oversubscribes Σ ceilings
        config = fleet_config(**GRID, epoch_ticks=2)
        report = oversubscription_report(config)
        assert report.ratio > 1.0  # the fleet is oversubscribed
        assert report.safe  # ...but statistically safe by construction
        assert report.margin_w >= 0.0


class TestFleetCli:
    ARGS = [
        "fleet", "--rows", "1", "--racks", "2", "--rack-nodes", "4",
        "--epoch-ticks", "2", "--period", "8", "--no-cache",
    ]

    def test_fleet_command(self, capsys):
        assert main(self.ARGS) == 0
        out = capsys.readouterr().out
        assert "oversubscribed facility budget" in out
        assert "violations 0" in out
        assert "SLO attainment" in out

    def test_fleet_command_with_partition(self, capsys):
        assert main(self.ARGS + [
            "--partition-rack", "row0/rack1",
            "--partition-start", "2", "--partition-end", "5",
        ]) == 0
        out = capsys.readouterr().out
        assert "rack partition row0/rack1" in out

    def test_unknown_rack_fails_cleanly(self, capsys):
        assert main(self.ARGS + ["--partition-rack", "row9/rack9"]) == 1
        assert "error:" in capsys.readouterr().err

    def test_faults_json_is_machine_readable(self, capsys):
        assert main(["faults", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert set(payload) == {
            "daemon", "transport", "crash", "telemetry"
        }
        partition = payload["transport"]["node0-partition"]
        assert partition["partitions"][0]["node"] == "node0"
        assert "arbiter-crash" in payload["crash"]
        assert all("name" in s for s in payload["daemon"].values())
        assert "liar-storm" in payload["telemetry"]
        assert all(
            "faults" in s for s in payload["telemetry"].values()
        )
