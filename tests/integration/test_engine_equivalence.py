"""Integration tests: scalar and array engines are byte-identical.

The acceptance bar for the batched array engine, end to end on real
stacks: a full experiment run — daemon, policy, fault injection,
cluster arbitration, control-plane faults, crash recovery — must
serialize to the **same bytes** whichever engine stepped the
simulation, and (for clusters) however the nodes were scheduled:
serial scalar, in-process stacked array, or fork-parallel workers.

These tests compare JSON-serialized results/traces rather than floats
with tolerances: the array engine's contract is bit-exactness, so any
drift at all is a failure.
"""

from __future__ import annotations

import dataclasses
import json

import pytest

pytest.importorskip("numpy")

from repro.config import AppSpec, ExperimentConfig, Priority
from repro.experiments.cache import result_to_jsonable
from repro.experiments.cluster_exp import default_cluster_config
from repro.experiments.runner import run_steady


def steady_bytes(engine: str, *, platform="skylake",
                 policy="frequency-shares", faults=None) -> bytes:
    config = ExperimentConfig(
        platform=platform,
        policy=policy,
        limit_w=50.0,
        apps=(
            AppSpec("cactusBSSN", shares=75.0, priority=Priority.HIGH),
            AppSpec("leela", shares=100.0, priority=Priority.HIGH),
            AppSpec("omnetpp", shares=25.0, priority=Priority.LOW),
            AppSpec("leela", shares=50.0, priority=Priority.LOW),
        ),
        faults=faults,
        fault_seed=7,
        engine=engine,
    )
    result = run_steady(config, duration_s=60.0, warmup_s=20.0)
    return json.dumps(result_to_jsonable(result), sort_keys=True).encode()


def cluster_trace_bytes(engine: str, *, jobs=None, transport=None,
                        crash_faults=None) -> bytes:
    from repro.cluster import run_cluster

    config = dataclasses.replace(
        default_cluster_config(
            n_nodes=3, transport=transport, crash_faults=crash_faults
        ),
        engine=engine,
    )
    run = run_cluster(config, 120.0, jobs=jobs)
    return json.dumps(run.trace.to_jsonable(), sort_keys=True).encode()


class TestSingleSocket:
    @pytest.mark.parametrize(
        "platform,policy",
        [
            ("skylake", "frequency-shares"),
            ("skylake", "rapl"),
            ("ryzen", "power-shares"),
        ],
    )
    def test_steady_runs_match(self, platform, policy):
        assert steady_bytes(
            "scalar", platform=platform, policy=policy
        ) == steady_bytes("array", platform=platform, policy=policy)

    def test_steady_runs_match_under_faults(self):
        """Fault scenario: gates force the per-tick slow path, and both
        engines must draw the identical fault stream around it."""
        assert steady_bytes("scalar", faults="full-storm") == (
            steady_bytes("array", faults="full-storm")
        )

    def test_steady_runs_match_under_app_crashes(self):
        """App crashes flip ``finished`` from outside the chip — the one
        mutation no dirty flag marks; the dynamic running mask must
        carry it into the batch."""
        assert steady_bytes("scalar", faults="app-crash") == (
            steady_bytes("array", faults="app-crash")
        )


class TestCluster:
    def test_stacked_serial_and_parallel_match(self):
        scalar = cluster_trace_bytes("scalar")
        stacked = cluster_trace_bytes("array")
        forked = cluster_trace_bytes("array", jobs=2)
        assert scalar == stacked
        assert scalar == forked

    def test_engines_match_under_transport_faults(self):
        """Control-plane scenario: lost/duplicated grant envelopes and
        lease step-downs must land on identical epochs either way."""
        assert cluster_trace_bytes(
            "scalar", transport="flaky-links"
        ) == cluster_trace_bytes("array", transport="flaky-links")

    def test_engines_match_under_crash_faults(self):
        """Crash scenario: node restarts rebuild mid-run stacks (fresh
        chips, boot-safe latch) whose epochs the stacked stepper gangs
        by window length."""
        assert cluster_trace_bytes(
            "scalar", crash_faults="node-restart"
        ) == cluster_trace_bytes("array", crash_faults="node-restart")

    def test_engines_match_under_crash_and_transport(self):
        assert cluster_trace_bytes(
            "scalar", transport="lossy-links", crash_faults="arbiter-crash"
        ) == cluster_trace_bytes(
            "array", transport="lossy-links", crash_faults="arbiter-crash"
        )
