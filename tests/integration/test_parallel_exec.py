"""Integration tests: parallel executor, cache round trip, fast path.

The contract under test is byte-identical results: a pool of workers, a
cache hit, or the simulator's batched fast path must each return
*exactly* what the plain serial slow path returns.
"""

import pytest

from repro.config import AppSpec, ExperimentConfig, build_stack
from repro.core.types import Priority
from repro.errors import ConfigError
from repro.experiments.cache import ResultCache
from repro.experiments.parallel import (
    ExperimentTask,
    resolve_jobs,
    run_tasks,
)
from repro.experiments.runner import run_steady

DURATION, WARMUP = 4.0, 1.0


def make_tasks():
    configs = [
        ExperimentConfig(
            platform="skylake",
            policy="frequency-shares",
            limit_w=limit,
            apps=(
                AppSpec("povray", shares=80.0),
                AppSpec("lbm", shares=20.0, priority=Priority.LOW),
            ),
            tick_s=5e-3,
        )
        for limit in (45.0, 55.0, 65.0)
    ]
    return [ExperimentTask(c, DURATION, WARMUP) for c in configs]


class TestRunTasks:
    def test_parallel_equals_serial(self):
        tasks = make_tasks()
        serial = run_tasks(tasks)
        parallel = run_tasks(tasks, jobs=2)
        assert serial == parallel  # dataclass equality: floats exact

    def test_results_are_input_ordered(self):
        tasks = make_tasks()
        results = run_tasks(tasks, jobs=2)
        assert [r.config for r in results] == [t.config for t in tasks]

    def test_rejects_non_tasks(self):
        with pytest.raises(ConfigError):
            run_tasks([make_tasks()[0].config])

    def test_cache_round_trip_is_exact(self, tmp_path):
        tasks = make_tasks()
        cache = ResultCache(root=tmp_path)
        first = run_tasks(tasks, cache=cache)
        assert cache.stats.stores == len(tasks)
        warm = run_tasks(tasks, jobs=2, cache=cache)
        assert warm == first
        assert cache.stats.hits == len(tasks)

    def test_partial_cache_mixes_hit_and_fresh(self, tmp_path):
        tasks = make_tasks()
        cache = ResultCache(root=tmp_path)
        run_tasks(tasks[:1], cache=cache)
        results = run_tasks(tasks, cache=cache)
        assert cache.stats.hits == 1
        assert results == run_tasks(tasks)


class TestResolveJobs:
    def test_default_is_serial(self):
        assert resolve_jobs(None) == 1
        assert resolve_jobs(0) == 1

    def test_negative_means_all_cores(self):
        assert resolve_jobs(-1) >= 1

    def test_positive_passthrough(self):
        assert resolve_jobs(3) == 3


class TestFastPathFullStack:
    def test_fast_path_matches_reference_stack(self):
        """run_steady through the batched+cached simulator equals the
        per-tick, cache-disabled reference on a real policy stack."""
        config = make_tasks()[0].config
        results = []
        for reference in (False, True):
            stack = build_stack(config)
            if reference:
                stack.engine.batching = False
                stack.chip.dirty_caching = False
            results.append(
                run_steady(
                    config, duration_s=DURATION, warmup_s=WARMUP,
                    stack=stack,
                )
            )
        fast, slow = results
        assert fast == slow
