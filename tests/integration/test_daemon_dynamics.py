"""Daemon dynamics under workload churn: apps finishing mid-run, parked
telemetry, and policy reactions to a changing active set."""

import pytest

from repro.core.daemon import PowerDaemon
from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.priority import PriorityPolicy
from repro.core.types import ManagedApp, Priority
from repro.hw.platform import get_platform
from repro.sched.pinning import pin_apps
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.workloads.spec import spec_app

TICK = 5e-3


def finite_app(name, seconds_at_ref):
    """An app sized to finish after roughly ``seconds_at_ref``."""
    model = spec_app(name)
    rate = model.ips(2200.0, 2200.0)
    return model.with_instructions(rate * seconds_at_ref)


class TestCompletionHandling:
    def test_finished_app_frees_power_for_others(self):
        """When a short app completes, redistribution hands its power to
        the survivors (the daemon sees the power drop as headroom)."""
        platform = get_platform("skylake")
        chip = Chip(platform, tick_s=TICK)
        engine = SimEngine(chip)
        apps = (
            [finite_app("cactusBSSN", 10.0)] * 5
            + [spec_app("leela", steady=True)] * 5
        )
        placements = pin_apps(chip, apps)
        managed = [
            ManagedApp(label=p.label, core_id=p.core_id, shares=50.0)
            for p in placements
        ]
        policy = FrequencySharesPolicy(platform, managed, 40.0)
        daemon = PowerDaemon(chip, policy)
        daemon.attach(engine)
        engine.run(12.0)  # cactusBSSN instances finish around t=10-12
        early_leela = daemon.history[7].app_frequency_mhz["leela#0"]
        engine.run(30.0)
        late_leela = daemon.history[-1].app_frequency_mhz["leela#0"]
        assert late_leela > early_leela
        # power still within the limit after the transition
        tail = [s.package_power_w for s in daemon.history[-6:]]
        assert max(tail) <= 42.0

    def test_priority_readmits_lp_when_hp_finishes(self):
        """Priority policy restarts its state machine when the active
        set changes: once power-hungry HP apps finish, previously starved
        LP apps get admitted."""
        platform = get_platform("skylake")
        chip = Chip(platform, tick_s=TICK)
        engine = SimEngine(chip)
        apps = (
            [finite_app("cactusBSSN", 15.0)] * 5
            + [spec_app("leela", steady=True)] * 5
        )
        placements = pin_apps(chip, apps)
        managed = [
            ManagedApp(
                label=p.label, core_id=p.core_id,
                priority=Priority.HIGH if i < 5 else Priority.LOW,
            )
            for i, p in enumerate(placements)
        ]
        policy = PriorityPolicy(platform, managed, 40.0)
        daemon = PowerDaemon(chip, policy)
        daemon.attach(engine)
        engine.run(10.0)
        # while HP run hot at 40 W, LP starve
        assert daemon.history[-1].app_parked["leela#0"]
        engine.run(50.0)  # HP finish; retries/readmission happen
        record = daemon.history[-1]
        assert not record.app_parked["leela#0"]
        assert record.app_frequency_mhz["leela#0"] > 0

    def test_parked_cores_report_zero_telemetry(self):
        platform = get_platform("skylake")
        chip = Chip(platform, tick_s=TICK)
        engine = SimEngine(chip)
        apps = (
            [spec_app("cactusBSSN", steady=True)] * 5
            + [spec_app("leela", steady=True)] * 5
        )
        placements = pin_apps(chip, apps)
        managed = [
            ManagedApp(
                label=p.label, core_id=p.core_id,
                priority=Priority.HIGH if i < 5 else Priority.LOW,
            )
            for i, p in enumerate(placements)
        ]
        policy = PriorityPolicy(platform, managed, 40.0)
        daemon = PowerDaemon(chip, policy)
        daemon.attach(engine)
        engine.run(15.0)
        record = daemon.history[-1]
        assert record.app_parked["leela#0"]
        assert record.app_frequency_mhz["leela#0"] == 0.0
        assert record.app_ips["leela#0"] == 0.0

    def test_all_apps_finished_drops_to_idle_power(self):
        platform = get_platform("skylake")
        chip = Chip(platform, tick_s=TICK)
        engine = SimEngine(chip)
        apps = [finite_app("leela", 5.0)] * 4
        placements = pin_apps(chip, apps)
        managed = [
            ManagedApp(label=p.label, core_id=p.core_id)
            for p in placements
        ]
        policy = FrequencySharesPolicy(platform, managed, 40.0)
        daemon = PowerDaemon(chip, policy)
        daemon.attach(engine)
        engine.run(25.0)
        # only uncore + idle floors remain
        assert daemon.history[-1].package_power_w < 12.0
