"""Smoke tests: every experiment module runs end to end (tiny runs).

The benchmark suite asserts the full shapes on longer runs; these keep
the experiment code itself covered by ``pytest tests/`` with minimal
wall-clock cost.
"""

import pytest

from repro.experiments.dvfs_sweep import run_dvfs_sweep
from repro.experiments.latency_exp import (
    normalized_latency,
    run_fig5_unfair_throttling,
    run_fig12_policies,
)
from repro.experiments.priority_exp import (
    run_fig7_priority_skylake,
    run_fig8_priority_ryzen,
)
from repro.experiments.random_exp import run_fig11_random_skylake
from repro.experiments.rapl_interference import (
    run_fig1_rapl_interference,
    run_fig4_percore_dvfs,
)
from repro.experiments.report import render_table
from repro.experiments.shares_exp import run_shares_experiment
from repro.experiments.timeshare_exp import run_fig6_timeshare


def test_fig1_smoke():
    result = run_fig1_rapl_interference(
        limits_w=(85.0, 40.0), duration_s=6.0, warmup_s=2.0
    )
    assert len(result.points) == 4
    render_table(result.to_rows())


def test_dvfs_sweep_smoke():
    result = run_dvfs_sweep(
        "skylake", benchmarks=("gcc", "cam4"),
        frequencies_mhz=[800.0, 2200.0, 3000.0],
        duration_s=2.0,
    )
    assert {p.benchmark for p in result.points} == {"gcc", "cam4"}
    render_table(result.to_rows())


def test_fig4_smoke():
    result = run_fig4_percore_dvfs(
        limits_w=(50.0,), throttle_points_mhz=(800.0, 2500.0),
        duration_s=6.0, warmup_s=2.0,
    )
    assert len(result.series(50.0)) == 2


def test_fig5_smoke():
    result = run_fig5_unfair_throttling(
        limits_w=(40.0,), duration_s=12.0, warmup_s=4.0
    )
    assert result.run("rapl", 40.0, True).p90_latency_s > 0


def test_fig6_smoke():
    result = run_fig6_timeshare(
        varied_quotas=(0.2, 0.5), duration_s=4.0
    )
    assert len(result.points) == 4
    render_table(result.to_rows())


def test_fig7_smoke():
    result = run_fig7_priority_skylake(
        limits_w=(50.0,), policies=("priority",),
        mixes={"5H5L": (5, 0, 0, 5)},
        duration_s=20.0, warmup_s=8.0,
    )
    assert result.cell("5H5L", 50.0, "priority").package_power_w > 0
    render_table(result.to_rows())


def test_fig8_smoke():
    result = run_fig8_priority_ryzen(
        limits_w=(40.0,), mixes={"2H6L": (1, 1, 3, 3)},
        duration_s=20.0, warmup_s=8.0,
    )
    cell = result.cell("2H6L", 40.0, "priority")
    assert cell.hp_core_power_w is not None


def test_shares_smoke():
    result = run_shares_experiment(
        "skylake", policies=("frequency-shares",), limits_w=(45.0,),
        ratios=((50, 50),), duration_s=15.0, warmup_s=6.0,
    )
    cell = result.cell("frequency-shares", 45.0, 50.0)
    assert 0.3 < cell.ld_frequency_fraction < 0.7


def test_fig11_smoke():
    result = run_fig11_random_skylake(
        sets=("A",), policies=("frequency-shares",), limits_w=(50.0,),
        duration_s=15.0, warmup_s=6.0,
    )
    series = result.series("A", "frequency-shares", 50.0)
    assert [c.app_index for c in series] == [0, 1, 2, 3, 4]


def test_fig12_smoke():
    result = run_fig12_policies(
        limits_w=(40.0,), policies=("frequency-shares",),
        duration_s=15.0, warmup_s=5.0,
    )
    assert normalized_latency(result, "frequency-shares", 40.0) < (
        normalized_latency(result, "rapl", 40.0) + 0.5
    )
