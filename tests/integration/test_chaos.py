"""Integration chaos runs: curated storms on both platforms.

These are the medium-length counterparts to the 10-minute soak runs in
``test_chaos_soak.py``: 60-second storms at a coarse tick, checking the
same invariant — ground-truth package power stays bounded and the
daemon never dies — plus deterministic replay of the health records.
"""

import dataclasses

import pytest

from repro.config import AppSpec, ExperimentConfig, build_stack
from repro.faults import health_summary

SETTLE_S = 10.0
TOLERANCE_W = 5.0

LIMITS = {"skylake": 50.0, "ryzen": 60.0}


def storm_config(platform, scenario, *, seed=0, tick_s=1e-2):
    return ExperimentConfig(
        platform=platform,
        policy="frequency-shares",
        limit_w=LIMITS[platform],
        apps=(
            AppSpec("leela", shares=90.0),
            AppSpec("cactusBSSN", shares=10.0),
        ),
        tick_s=tick_s,
        faults=scenario,
        fault_seed=seed,
    )


def run_storm(config, duration_s):
    stack = build_stack(config)
    truth = []
    stack.engine.every(
        0.1,
        lambda now, s=stack: truth.append(
            (s.chip.time_s, s.chip.last_package_power_w)
        ),
    )
    stack.engine.run(duration_s)
    return stack, truth


def windowed_violations(truth, limit_w):
    violations = []
    window, window_start = [], 0.0
    for t, p in truth:
        if t - window_start >= 1.0:
            if window and window_start >= SETTLE_S:
                avg = sum(window) / len(window)
                if avg > limit_w + TOLERANCE_W:
                    violations.append((window_start, avg))
            window, window_start = [], t
        window.append(p)
    return violations


@pytest.mark.parametrize("platform", ["skylake", "ryzen"])
class TestFullStorm:
    def test_limit_held_and_daemon_survives(self, platform):
        config = storm_config(platform, "full-storm")
        stack, truth = run_storm(config, 60.0)
        assert windowed_violations(truth, LIMITS[platform]) == []
        summary = health_summary(stack.daemon.history)
        assert summary["iterations"] >= 45  # some ticks drop; most land
        # the storm actually exercised the machinery
        assert stack.fault_msr.stats.total() > 0
        assert summary["contained_errors"] > 0

    def test_health_records_deterministic_for_seed(self, platform):
        def histories(seed):
            config = storm_config(platform, "full-storm", seed=seed)
            stack, _ = run_storm(config, 30.0)
            return [
                dataclasses.asdict(r.health) for r in stack.daemon.history
            ]

        assert histories(7) == histories(7)
        assert histories(7) != histories(8)


@pytest.mark.parametrize("platform", ["skylake", "ryzen"])
class TestTransientStorm:
    def test_daemon_recovers_after_window(self, platform):
        # storm is active 15-45 s; by 70 s telemetry has been clean for
        # 25 s and the daemon must be back in normal mode
        config = storm_config(platform, "transient-storm")
        stack, truth = run_storm(config, 70.0)
        assert windowed_violations(truth, LIMITS[platform]) == []
        summary = health_summary(stack.daemon.history)
        assert summary["final_mode"] == "normal"
        # the storm was bad enough to trip safe mode at least once
        assert summary["safe_mode_entries"] >= 1

    def test_post_recovery_iterations_are_healthy(self, platform):
        config = storm_config(platform, "transient-storm")
        stack, _ = run_storm(config, 70.0)
        tail = [r for r in stack.daemon.history if r.time_s > 55.0]
        assert tail
        assert all(r.health.telemetry_ok for r in tail)
        assert all(r.health.mode == "normal" for r in tail)


class TestAppCrash:
    @pytest.mark.parametrize("platform", ["skylake", "ryzen"])
    def test_crash_scenario_runs_clean(self, platform):
        config = storm_config(platform, "app-crash")
        stack, truth = run_storm(config, 30.0)
        assert windowed_violations(truth, LIMITS[platform]) == []
        # the victim app (index 0, crash at t=15) goes idle: its IPS
        # must collapse while the survivor keeps retiring instructions
        victim, survivor = stack.labels[0], stack.labels[1]
        tail = [r for r in stack.daemon.history if r.time_s > 20.0]
        assert tail  # daemon kept iterating through the crash
        assert all(r.app_ips[victim] < 1e6 for r in tail)
        assert all(r.app_ips[survivor] > 1e6 for r in tail)
