"""Performance measurements (``--bench`` only; tier-1 skips these).

These are measurements, not assertions about absolute speed — they keep
``scripts/bench.py`` importable/runnable and sanity-check its output
schema so the chaos-smoke regression gate cannot rot.
"""

import json
import sys
from pathlib import Path

import pytest

SCRIPTS = Path(__file__).resolve().parents[2] / "scripts"


@pytest.fixture(scope="module")
def bench():
    sys.path.insert(0, str(SCRIPTS))
    try:
        import bench as module
        yield module
    finally:
        sys.path.remove(str(SCRIPTS))


@pytest.mark.bench
def test_ticks_per_sec_measures(bench):
    rate = bench.measure_ticks_per_sec(sim_seconds=2.0)
    assert rate > 0


@pytest.mark.bench
def test_cluster_ticks_per_sec_measures(bench):
    rate = bench.measure_cluster_ticks_per_sec(sim_seconds=10.0)
    assert rate > 0


@pytest.mark.bench
def test_writes_baseline_schema(bench, tmp_path, capsys):
    out = tmp_path / "BENCH_sim.json"
    assert bench.main(["--skip-report", "--output", str(out)]) == 0
    data = json.loads(out.read_text())
    assert set(data) == {
        "ticks_per_sec", "cluster_ticks_per_sec", "report_quick_s", "git",
    }
    assert data["ticks_per_sec"] > 0
    assert data["cluster_ticks_per_sec"] > 0


@pytest.mark.bench
def test_check_passes_against_fresh_baseline(bench, monkeypatch, tmp_path):
    out = tmp_path / "BENCH_sim.json"
    assert bench.main(["--skip-report", "--output", str(out)]) == 0
    monkeypatch.setattr(bench, "BASELINE_PATH", out)
    assert bench.check_regression(out) == 0


@pytest.mark.bench
def test_check_fails_without_baseline(bench, tmp_path):
    assert bench.check_regression(tmp_path / "missing.json") == 2
