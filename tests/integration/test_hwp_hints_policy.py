"""Integration tests for the HWP-hints policy variant."""

import pytest

from repro.core.daemon import PowerDaemon
from repro.core.hwp_hints import HwpHintsPolicy
from repro.core.types import ManagedApp
from repro.errors import ConfigError
from repro.hw.hwp import HwpController
from repro.hw.platform import get_platform
from repro.sched.pinning import pin_apps
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.workloads.spec import spec_app


def build(limit_w=45.0, shares=(70.0, 30.0)):
    platform = get_platform("skylake")
    chip = Chip(platform, tick_s=5e-3)
    engine = SimEngine(chip)
    placements = pin_apps(
        chip,
        [spec_app("leela", steady=True)] * 5
        + [spec_app("cactusBSSN", steady=True)] * 5,
    )
    managed = [
        ManagedApp(label=p.label, core_id=p.core_id,
                   shares=shares[0] if i < 5 else shares[1])
        for i, p in enumerate(placements)
    ]
    policy = HwpHintsPolicy(platform, managed, limit_w)
    hwp = HwpController(chip)
    policy.attach_hwp(hwp)
    hwp.attach(engine, period_s=0.05)
    daemon = PowerDaemon(chip, policy)
    daemon.attach(engine)
    return chip, engine, daemon, policy


class TestHwpHints:
    def test_requires_attached_controller(self, skylake):
        managed = [ManagedApp(label="a", core_id=0)]
        policy = HwpHintsPolicy(skylake, managed, 45.0)
        with pytest.raises(ConfigError):
            policy.initial_distribution()

    def test_enforces_limit_through_hints(self):
        chip, engine, daemon, _ = build(limit_w=45.0)
        engine.run(45.0)
        tail = [s.package_power_w for s in daemon.history[-12:]]
        assert sum(tail) / len(tail) == pytest.approx(45.0, abs=2.5)

    def test_share_split_realised_by_hardware(self):
        chip, engine, daemon, _ = build(limit_w=45.0, shares=(70.0, 30.0))
        engine.run(45.0)
        window = daemon.history[-12:]
        n = len(window)
        ld = sum(s.app_frequency_mhz["leela#0"] for s in window) / n
        hd = sum(s.app_frequency_mhz["cactusBSSN#0"] for s in window) / n
        assert ld > hd
        assert ld / (ld + hd) == pytest.approx(0.7, abs=0.10)

    def test_daemon_does_not_program_frequencies(self):
        """The HWP controller owns P-state requests; the daemon's hint
        ceilings must not be written via cpufreq (they would fight)."""
        chip, engine, daemon, policy = build()
        assert policy.programs_frequencies is False
        engine.run(3.0)
        # requested frequencies move at HWP cadence, bounded by hints
        ceilings = policy._ceilings
        for app in policy.apps:
            requested = chip.requested_frequency(app.core_id)
            assert requested <= ceilings[app.label] + 150.0
