"""Integration tests: crash recovery on the cluster control plane.

The acceptance criteria of the crash-recovery work, end to end on real
simulated nodes:

* an arbiter crash mid-epoch is redone from the write-ahead journal and
  is **invisible** — grants, reports, lease states, and every trace
  series except the recovery counter are byte-identical to a run that
  never crashed;
* a node crash-and-restart walks the restart protocol: silence while
  down, boot into SAFE with the backstop latched, re-admission through
  the lease ladder with no reservation double-count, GRANTED again
  within ``ttl + 2`` epochs of the reboot;
* killing the whole supervisor at any epoch fence and rebuilding it
  from the journal (:func:`~repro.cluster.runtime.recover_cluster_sim`)
  continues the run byte-identically — including through a journal that
  was dumped to disk and torn mid-record;
* serial and fork-parallel stepping stay byte-identical under every
  curated crash scenario, because every crash/restart decision is
  rolled in the parent.
"""

import dataclasses
import functools
import json

import pytest

from repro.cluster import (
    ClusterSim,
    Journal,
    recover_cluster_sim,
    run_cluster,
)
from repro.experiments.cluster_exp import default_cluster_config
from repro.faults import CRASH_SCENARIOS, get_crash_scenario

pytestmark = pytest.mark.partition

DURATION_S = 140.0  # 14 epochs at the default cadence


def crash_config(scenario, *, seed=0, n_nodes=3):
    return default_cluster_config(
        n_nodes=n_nodes, crash_faults=scenario, seed=seed
    )


@functools.lru_cache(maxsize=None)
def cached_run(scenario, seed=0):
    """One full run per (scenario, seed), shared across tests (runs are
    pure functions of the config, so sharing cannot couple tests)."""
    return run_cluster(crash_config(scenario, seed=seed), DURATION_S)


def trace_bytes(run) -> bytes:
    return json.dumps(run.trace.to_jsonable(), sort_keys=True).encode()


def grants_of(run):
    return [grant.caps_w for grant in run.grants]


class TestArbiterCrashRedo:
    def test_arbiter_crash_is_invisible_except_the_counter(self):
        quiet = cached_run(None)
        crashed = cached_run("arbiter-crash")
        assert crashed.crash_recoveries == 1
        assert grants_of(crashed) == grants_of(quiet)
        assert crashed.reports == quiet.reports
        assert crashed.lease_states == quiet.lease_states
        a, b = quiet.trace.to_jsonable(), crashed.trace.to_jsonable()
        differing = sorted(
            k for k in set(a) | set(b) if a.get(k) != b.get(k)
        )
        assert differing == ["cluster.crash_recoveries"]

    def test_redo_preserves_sequence_numbers(self):
        # the rebuilt arbiter resends with the journaled send counter,
        # so downstream guards see the exact envelopes of the uncrashed
        # run — no stale rejections, no gaps
        quiet = cached_run(None)
        crashed = cached_run("arbiter-crash")
        assert (
            crashed.transport_stats.stale == quiet.transport_stats.stale
        )
        assert crashed.transport_stats.sent == quiet.transport_stats.sent


class TestNodeRestartProtocol:
    def test_restart_window_and_readmission(self):
        config = crash_config("node-restart")
        run = cached_run("node-restart")
        scenario = get_crash_scenario("node-restart")
        window = scenario.node_restarts[0]
        # silence while down
        for epoch in range(window.crash_epoch, window.restart_epoch):
            assert "node0" not in run.reports[epoch]
        # reboot recorded, and GRANTED above the floor within ttl + 2
        assert run.node_restarts == [(window.restart_epoch, "node0")]
        ttl = config.lease_ttl_epochs
        floor = config.node("node0").min_cap_w
        states = [st.get("node0") for st in run.lease_states]
        tail = range(
            window.restart_epoch,
            min(window.restart_epoch + ttl + 2, len(states)),
        )
        assert any(
            states[e] == "granted"
            and run.grants[e].caps_w.get("node0", 0.0) > floor
            for e in tail
        )

    def test_restarted_node_boots_with_safe_latch(self):
        # the rebooted stack must come up with the daemon's safe-mode
        # latch held before its first tick: drive the node layer
        # directly and inspect the daemon before the lease releases it
        from repro.cluster.node import ClusterNode

        config = crash_config("node-restart")
        node = ClusterNode(config, 0)
        node.step_epoch(0, 50.0, 0.0, 10.0)
        assert node.stack.daemon.mode.value == "normal"
        node.restart()
        assert node.stack is None
        node.step_epoch(1, 50.0, 10.0, 20.0, safe_mode=True)
        assert node.stack.daemon.mode.value == "safe"
        assert node.stack.daemon.safe_latched

    def test_restart_draws_a_fresh_fault_seed(self):
        config = crash_config("node-restart")
        assert config.node_fault_seed(0, 0) != config.node_fault_seed(0, 1)
        assert config.node_fault_seed(0, 1) == config.node_fault_seed(0, 1)

    @pytest.mark.parametrize(
        "scenario", sorted(name for name in CRASH_SCENARIOS if name != "none")
    )
    def test_cap_sum_holds_through_crash_and_rejoin(self, scenario):
        config = crash_config(scenario, seed=11)
        run = run_cluster(config, DURATION_S)
        for epoch, grant in enumerate(run.grants):
            total = grant.total_w + sum(
                w
                for name, w in grant.reserved_w.items()
                if name not in grant.caps_w
            )
            assert total <= config.budget_w + 1e-6, (
                f"{scenario}: cap sum {total} over budget at epoch {epoch}"
            )

    def test_no_reservation_double_count_at_rejoin(self):
        # at the reboot epoch the node bids as a new member: its old
        # reservation must be gone, not held alongside the fresh grant
        run = cached_run("node-restart")
        scenario = get_crash_scenario("node-restart")
        reboot = scenario.node_restarts[0].restart_epoch
        grant = run.grants[reboot]
        assert "node0" not in grant.reserved_w
        assert grant.total_w <= run.config.budget_w + 1e-6


class TestCrashInPartition:
    def test_node_stays_safe_until_heal_then_rejoins(self):
        # node0 reboots at epoch 7 while its partition (epochs 4-9)
        # still severs the link: it must sit in SAFE until the heal,
        # then be re-granted within two epochs
        config = crash_config("crash-in-partition")
        run = cached_run("crash-in-partition")
        states = [st.get("node0") for st in run.lease_states]
        heal = 9
        for epoch in range(7, heal):
            assert states[epoch] == "safe", (
                f"epoch {epoch}: {states[epoch]} inside the partition"
            )
        assert "granted" in states[heal:heal + 2]
        assert run.max_cap_sum_w() <= config.budget_w + 1e-6


class TestSupervisorRecovery:
    def _truncate_at_fence(self, journal: Journal, epoch: int) -> Journal:
        """A copy of the journal as if the supervisor died right after
        sealing ``epoch`` (everything later lost)."""
        kept = Journal()
        for entry in journal.entries:
            kept.append(entry.kind, entry.epoch, entry.data)
            if entry.kind == "fence" and entry.epoch == epoch:
                break
        return kept

    @pytest.mark.parametrize("fence", [2, 6, 9])
    @pytest.mark.parametrize(
        "scenario", ["none", "node-restart", "crash-in-partition"]
    )
    def test_replay_continues_byte_identically(self, scenario, fence):
        config = crash_config(scenario, seed=3)
        full = cached_run(scenario, seed=3)
        journal = self._truncate_at_fence(full.journal, fence)
        sim, nxt = recover_cluster_sim(config, journal)
        assert nxt == fence + 1
        tail = sim.run(DURATION_S, start_epoch=nxt)
        assert grants_of(tail) == grants_of(full)[nxt:]
        assert tail.reports == full.reports[nxt:]
        assert tail.lease_states == full.lease_states[nxt:]
        # the continued journal tail matches the uncrashed one entry
        # for entry (seq offsets differ; kinds, epochs, data match)
        full_tail = [
            (e.kind, e.epoch, e.data)
            for e in full.journal.entries
            if e.epoch > fence
        ]
        cont_tail = [
            (e.kind, e.epoch, e.data)
            for e in tail.journal.entries
            if e.epoch > fence
        ]
        assert cont_tail == full_tail

    def test_recovery_from_torn_disk_dump(self, tmp_path):
        # dump to disk, tear the final record mid-line (crash during
        # append), reload, recover, continue: still byte-identical
        config = crash_config("node-restart", seed=9)
        full = cached_run("node-restart", seed=9)
        journal = self._truncate_at_fence(full.journal, 5)
        journal.append("crash", 6, {"node": "node0"})  # unfenced suffix
        path = tmp_path / "journal.jsonl"
        text = journal.to_jsonl()
        path.write_text(text[:-9], encoding="utf-8")
        reloaded = Journal.load(path)
        assert reloaded.last_fenced_epoch == 5
        sim, nxt = recover_cluster_sim(config, reloaded)
        tail = sim.run(DURATION_S, start_epoch=nxt)
        assert grants_of(tail) == grants_of(full)[nxt:]
        assert tail.lease_states == full.lease_states[nxt:]

    def test_empty_journal_recovers_to_cold_start(self):
        config = crash_config("none", seed=2)
        sim, nxt = recover_cluster_sim(config, Journal())
        assert nxt == 0
        rerun = sim.run(DURATION_S)
        fresh = run_cluster(config, DURATION_S)
        assert trace_bytes(rerun) == trace_bytes(fresh)


class TestSerialParallelEquivalence:
    @pytest.mark.parametrize("scenario", sorted(CRASH_SCENARIOS))
    def test_byte_identical_under_crash_faults(self, scenario):
        config = crash_config(scenario, seed=5)
        serial = run_cluster(config, DURATION_S)
        parallel = run_cluster(config, DURATION_S, jobs=2)
        assert trace_bytes(serial) == trace_bytes(parallel)
        assert grants_of(serial) == grants_of(parallel)
        assert serial.lease_states == parallel.lease_states
        assert (
            serial.journal.to_jsonl() == parallel.journal.to_jsonl()
        )


class TestConfigPlumbing:
    def test_unknown_crash_scenario_rejected(self):
        with pytest.raises(Exception, match="crash scenario"):
            crash_config("no-such-drill")

    def test_crash_scenario_must_name_known_nodes(self):
        from repro.errors import ConfigError

        config = crash_config("node-restart")
        with pytest.raises(ConfigError, match="unknown node"):
            dataclasses.replace(
                config, nodes=tuple(
                    dataclasses.replace(n, name=f"host{i}")
                    for i, n in enumerate(config.nodes)
                )
            )

    def test_companion_transport_applies_only_without_explicit(self):
        with_companion = ClusterSim(crash_config("crash-in-partition"))
        assert not with_companion.transport.scenario.quiet
        explicit = ClusterSim(
            dataclasses.replace(
                crash_config("crash-in-partition"), transport="none"
            )
        )
        assert explicit.transport.scenario.quiet
