"""Integration tests for the extension experiments."""

import pytest

from repro.experiments.consolidation_exp import run_consolidation_experiment
from repro.experiments.gaming_exp import run_gaming_experiment


class TestGamingExperiment:
    def test_gaming_backfires_under_performance_shares(self):
        """The paper's soundness criterion (section 8): NOP-padding's
        frequency 'benefit' is outweighed by the loss of useful work."""
        result = run_gaming_experiment(
            nop_fraction=0.4, duration_s=25.0, warmup_s=12.0
        )
        assert result.gaming_payoff < 0.9
        # the policy visibly punished the inflated IPS with frequency
        assert result.gamed_freq_mhz < result.honest_freq_mhz


class TestConsolidationExperiment:
    def test_consolidation_beats_starvation_for_lp(self):
        starved = run_consolidation_experiment(
            consolidate=False, duration_s=15.0
        )
        packed = run_consolidation_experiment(
            consolidate=True, duration_s=15.0
        )
        assert starved.lp_norm_perf == 0.0
        assert packed.lp_norm_perf > 0.03
        assert packed.lp_cores_active >= 1

    def test_consolidation_costs_hp_its_boost(self):
        """Waking LP cores lowers the turbo ceiling — the exact trade the
        paper's implementation resolves in favour of starvation."""
        starved = run_consolidation_experiment(
            consolidate=False, duration_s=15.0
        )
        packed = run_consolidation_experiment(
            consolidate=True, duration_s=15.0
        )
        assert packed.hp_norm_perf < starved.hp_norm_perf

    def test_both_modes_respect_limit(self):
        for consolidate in (False, True):
            result = run_consolidation_experiment(
                consolidate=consolidate, duration_s=15.0
            )
            assert result.package_power_w <= result.limit_w + 1.0
