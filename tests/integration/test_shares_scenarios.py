"""Integration tests: proportional-share behaviour end to end."""

import pytest

from repro.config import AppSpec, ExperimentConfig, build_stack

TICK = 5e-3


def shares_config(platform, policy, limit, ld_shares, hd_shares):
    n = 10 if platform == "skylake" else 8
    half = n // 2
    apps = tuple(
        [AppSpec("leela", shares=ld_shares)] * half
        + [AppSpec("cactusBSSN", shares=hd_shares)] * half
    )
    return ExperimentConfig(
        platform=platform, policy=policy, limit_w=limit,
        apps=apps, tick_s=TICK,
    )


def run_means(config, seconds=40.0, warm=20.0):
    stack = build_stack(config)
    stack.engine.run(seconds)
    window = [s for s in stack.daemon.history if s.time_s >= warm]
    n = len(window)
    freq = {
        label: sum(s.app_frequency_mhz[label] for s in window) / n
        for label in stack.labels
    }
    power = sum(s.package_power_w for s in window) / n
    return stack, freq, power


class TestFrequencyShares:
    @pytest.mark.parametrize("platform", ["skylake", "ryzen"])
    def test_frequency_ratio_tracks_shares(self, platform):
        config = shares_config(platform, "frequency-shares", 45.0, 70, 30)
        _, freq, _ = run_means(config)
        ld = freq["leela#0"]
        hd = freq["cactusBSSN#0"]
        assert ld / hd == pytest.approx(70 / 30, rel=0.15)

    def test_power_near_limit(self):
        config = shares_config("skylake", "frequency-shares", 45.0, 50, 50)
        _, _, power = run_means(config)
        assert power == pytest.approx(45.0, abs=2.0)

    def test_extreme_ratio_hits_floor(self):
        """Paper: 90/10 cannot be honoured — the frequency floor binds,
        so the low-share app gets more than its share."""
        config = shares_config("skylake", "frequency-shares", 45.0, 90, 10)
        _, freq, _ = run_means(config)
        hd = freq["cactusBSSN#0"]
        ld = freq["leela#0"]
        assert hd == pytest.approx(800.0, abs=30.0)
        assert hd / (hd + ld) > 0.10  # more than its 10% share

    def test_same_share_same_frequency(self):
        config = shares_config("skylake", "frequency-shares", 45.0, 50, 50)
        _, freq, _ = run_means(config)
        assert freq["leela#0"] == pytest.approx(
            freq["cactusBSSN#0"], rel=0.03
        )


class TestPerformanceShares:
    def test_perf_fraction_tracks_shares(self):
        config = shares_config("skylake", "performance-shares", 45.0, 70, 30)
        stack, _, _ = run_means(config)
        from repro.experiments.runner import standalone_reference_ips

        window = stack.daemon.history[-10:]
        ld_base = standalone_reference_ips(stack.platform, "leela")
        hd_base = standalone_reference_ips(stack.platform, "cactusBSSN")
        ld = sum(
            s.app_ips["leela#0"] / ld_base for s in window
        ) / len(window)
        hd = sum(
            s.app_ips["cactusBSSN#0"] / hd_base for s in window
        ) / len(window)
        assert ld / (ld + hd) == pytest.approx(0.7, abs=0.08)


class TestPowerShares:
    def test_per_core_power_tracks_shares_on_ryzen(self):
        config = shares_config("ryzen", "power-shares", 40.0, 70, 30)
        stack, _, _ = run_means(config)
        window = stack.daemon.history[-10:]
        ld = sum(s.app_power_w["leela#0"] for s in window) / len(window)
        hd = sum(s.app_power_w["cactusBSSN#0"] for s in window) / len(window)
        assert ld / (ld + hd) == pytest.approx(0.7, abs=0.07)

    def test_power_shares_isolate_performance_worst(self):
        """The paper's headline negative result (Fig 10): performance
        fractions deviate from the share split far more under power
        shares, because equal watts buy unequal-demand apps unequal
        frequency.  Visible at an asymmetric ratio (30/70)."""
        from repro.experiments.runner import standalone_reference_ips

        deviation = {}
        for policy in ("frequency-shares", "power-shares"):
            config = shares_config("ryzen", policy, 40.0, 30, 70)
            stack, _, _ = run_means(config)
            window = stack.daemon.history[-10:]
            perf = {}
            for name in ("leela", "cactusBSSN"):
                base = standalone_reference_ips(stack.platform, name)
                perf[name] = sum(
                    s.app_ips[f"{name}#0"] / base for s in window
                ) / len(window)
            ld_fraction = perf["leela"] / (perf["leela"] + perf["cactusBSSN"])
            deviation[policy] = abs(ld_fraction - 0.30)
        assert deviation["power-shares"] > deviation["frequency-shares"] + 0.03
