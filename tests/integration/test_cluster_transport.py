"""Integration tests: the cluster under control-plane faults.

The acceptance criteria of the unreliable-transport work, end to end on
real simulated nodes: under every curated fault scenario the cap-sum
invariant holds at every epoch (``check_invariant`` inside the loop
never trips), a fully partitioned node walks its lease ladder to SAFE
within ``lease_ttl + 1`` epochs, the healed node is re-admitted to its
share within two epochs, and serial vs parallel steppers stay
byte-identical because every transport and lease decision lives in the
parent process.
"""

import json

import pytest

from repro.cluster import run_cluster
from repro.experiments.cluster_exp import default_cluster_config
from repro.faults import TRANSPORT_SCENARIOS

pytestmark = pytest.mark.partition


def trace_bytes(run) -> bytes:
    return json.dumps(run.trace.to_jsonable(), sort_keys=True).encode()


class TestInvariantUnderFaults:
    @pytest.mark.parametrize("scenario", sorted(TRANSPORT_SCENARIOS))
    def test_cap_sum_never_exceeds_budget(self, scenario):
        # check_invariant runs inside the epoch loop: completing the
        # run at all proves it never tripped.  The explicit sweep below
        # re-asserts the witness from the recorded grants.
        config = default_cluster_config(
            n_nodes=3, transport=scenario, seed=7
        )
        run = run_cluster(config, 140.0)
        assert run.n_epochs == 14
        for epoch, grant in enumerate(run.grants):
            total = grant.total_w + sum(
                grant.reserved_w.get(name, 0.0)
                for name in grant.reserved_w
                if name not in grant.caps_w
            )
            assert total <= config.budget_w + 1e-6, (
                f"{scenario}: cap sum {total} over budget at epoch {epoch}"
            )

    @pytest.mark.parametrize("seed", [0, 7, 23])
    def test_storm_is_noisy_but_safe(self, seed):
        config = default_cluster_config(
            n_nodes=3, transport="transport-storm", seed=seed
        )
        run = run_cluster(config, 140.0)
        # the storm genuinely interferes ...
        assert run.transport_stats.dropped > 0
        # ... yet never breaks the budget
        assert run.max_cap_sum_w() <= config.budget_w + 1e-6


class TestPartitionLadder:
    def test_partitioned_node_reaches_safe_within_ttl_plus_one(self):
        # node0-partition severs node0's link for epochs 4-8
        config = default_cluster_config(
            n_nodes=3, transport="node0-partition", seed=0
        )
        run = run_cluster(config, 140.0)
        start, ttl = 4, config.lease_ttl_epochs
        states = [st["node0"] for st in run.lease_states]
        assert "safe" in states[start:start + ttl + 2]
        # the ladder is walked strictly downward: holdover before
        # degraded before safe
        outage = states[start:start + ttl + 2]
        assert outage.index("safe") > outage.index("degraded")

    def test_arbiter_reserves_silent_nodes_budget(self):
        config = default_cluster_config(
            n_nodes=3, transport="node0-partition", seed=0
        )
        run = run_cluster(config, 140.0)
        # while node0 is silent past its first missed renewal, the
        # arbiter carries a reservation for it instead of a live grant
        reserved_epochs = [
            epoch for epoch, grant in enumerate(run.grants)
            if "node0" in grant.reserved_w
        ]
        assert reserved_epochs
        # silent from epoch 4 (first missed report) until the heal's
        # own report lands at epoch 10
        assert reserved_epochs == list(range(4, 10))

    def test_healed_node_readmitted_within_two_epochs(self):
        config = default_cluster_config(
            n_nodes=3, transport="node0-partition", seed=0
        )
        run = run_cluster(config, 140.0)
        heal = 9
        floor = config.node("node0").min_cap_w
        states = [st["node0"] for st in run.lease_states]
        readmitted = [
            epoch
            for epoch in range(heal, min(heal + 2, run.n_epochs))
            if states[epoch] == "granted"
        ]
        assert readmitted, f"states after heal: {states[heal:heal + 2]}"
        # and within one more epoch the node is back above its floor
        assert any(
            run.grants[epoch].caps_w.get("node0", 0.0) > floor
            for epoch in range(heal, min(heal + 3, run.n_epochs))
        )

    def test_safe_node_latches_daemon_backstop(self):
        config = default_cluster_config(
            n_nodes=3, transport="node0-partition", seed=0
        )
        run = run_cluster(config, 140.0)
        safe_epochs = [
            epoch for epoch, st in enumerate(run.lease_states)
            if st["node0"] == "safe"
        ]
        assert safe_epochs
        # the trace carries the lease ladder for post-hoc analysis
        codes = run.trace.series("node0.lease")
        assert max(codes.values) == 3.0  # SAFE
        assert codes.values[safe_epochs[0]] == 3.0

    def test_full_arbiter_partition_degrades_everyone(self):
        config = default_cluster_config(
            n_nodes=3, transport="arbiter-partition", seed=0
        )
        run = run_cluster(config, 140.0)
        # epochs 5-7 sever every link: all nodes leave GRANTED ...
        mid = run.lease_states[7]
        assert all(state != "granted" for state in mid.values())
        # ... and all win their grants back after the heal
        final = run.lease_states[-1]
        assert all(state == "granted" for state in final.values())
        assert run.max_cap_sum_w() <= config.budget_w + 1e-6


class TestDeterminismUnderFaults:
    def test_same_seed_replays_byte_identically(self):
        config = default_cluster_config(
            n_nodes=3, transport="flaky-links", seed=5
        )
        a = run_cluster(config, 120.0)
        b = run_cluster(config, 120.0)
        assert trace_bytes(a) == trace_bytes(b)
        assert a.lease_states == b.lease_states

    def test_parallel_stepper_byte_identical_under_storm(self):
        # every transport and lease decision happens in the parent, so
        # fork workers cannot perturb the control plane
        config = default_cluster_config(
            n_nodes=3, transport="transport-storm", seed=5
        )
        serial = run_cluster(config, 120.0, jobs=1)
        parallel = run_cluster(config, 120.0, jobs=2)
        assert trace_bytes(serial) == trace_bytes(parallel)
        assert serial.grants == parallel.grants
        assert serial.lease_states == parallel.lease_states

    def test_different_transport_seeds_diverge(self):
        a = run_cluster(default_cluster_config(
            n_nodes=3, transport="transport-storm", seed=5), 120.0)
        b = run_cluster(default_cluster_config(
            n_nodes=3, transport="transport-storm", seed=6), 120.0)
        assert trace_bytes(a) != trace_bytes(b)


class TestQuietTransportCompatibility:
    def test_explicit_none_matches_no_transport(self):
        # transport="none" routes every envelope perfectly: the run is
        # byte-identical to the pre-transport perfect-network loop
        base = run_cluster(default_cluster_config(n_nodes=3, seed=3), 120.0)
        quiet = run_cluster(default_cluster_config(
            n_nodes=3, transport="none", seed=3), 120.0)
        assert trace_bytes(base) == trace_bytes(quiet)
        assert base.grants == quiet.grants

    def test_quiet_runs_stay_granted(self):
        run = run_cluster(default_cluster_config(n_nodes=3, seed=3), 120.0)
        for st in run.lease_states:
            assert set(st.values()) == {"granted"}
        assert run.transport_stats.dropped == 0
        assert run.transport_stats.stale == 0


class TestTraceAndExperiment:
    def test_trace_records_transport_health(self):
        config = default_cluster_config(
            n_nodes=3, transport="lossy-links", seed=2
        )
        run = run_cluster(config, 120.0)
        dropped = run.trace.series("transport.dropped")
        assert sum(dropped.values) == run.transport_stats.dropped > 0
        reserved = run.trace.series("cluster.reserved_w")
        assert len(reserved.values) == run.n_epochs

    def test_experiment_summary_reports_control_plane(self):
        from repro.experiments.cluster_exp import run_cluster_experiment

        config = default_cluster_config(
            n_nodes=3, transport="node0-partition", seed=0
        )
        result = run_cluster_experiment(
            config, duration_s=140.0, warmup_s=40.0, cache=None
        )
        assert result.transport["dropped"] > 0
        assert result.safe_node_epochs > 0
        assert result.degraded_grants > 0
        assert result.cap_violations == 0
