"""Integration tests for the cluster arbitration subsystem.

The acceptance criteria of the cluster layer, end to end on real
simulated nodes: seeded determinism (byte-identical traces), the
parallel node stepper matching serial exactly, proportional power
delivery across nodes, crash/join lifecycle, and the experiment +
cache + CLI wiring.
"""

import json

import pytest

from repro.cluster import ClusterConfig, NodeSpec, run_cluster
from repro.config import AppSpec

BUSY = tuple(AppSpec("cactusBSSN", shares=50.0) for _ in range(6))


def two_node_config(**kwargs):
    kwargs.setdefault("budget_w", 75.0)
    kwargs.setdefault("seed", 3)
    return ClusterConfig(
        nodes=(
            NodeSpec("hi", apps=BUSY, shares=2.0, min_cap_w=12.0),
            NodeSpec("lo", apps=BUSY, shares=1.0, min_cap_w=12.0),
        ),
        **kwargs,
    )


def trace_bytes(run) -> bytes:
    return json.dumps(run.trace.to_jsonable(), sort_keys=True).encode()


class TestDeterminism:
    def test_two_serial_runs_byte_identical(self):
        config = two_node_config()
        a = run_cluster(config, 40.0)
        b = run_cluster(config, 40.0)
        assert trace_bytes(a) == trace_bytes(b)

    def test_parallel_stepper_matches_serial_exactly(self):
        config = two_node_config()
        serial = run_cluster(config, 40.0, jobs=1)
        parallel = run_cluster(config, 40.0, jobs=2)
        assert trace_bytes(serial) == trace_bytes(parallel)
        assert serial.grants == parallel.grants

    def test_faulty_runs_replay_deterministically(self):
        config = ClusterConfig(
            budget_w=75.0,
            nodes=(
                NodeSpec("a", apps=BUSY, shares=1.0, min_cap_w=12.0,
                         faults="flaky-msr"),
                NodeSpec("b", apps=BUSY, shares=1.0, min_cap_w=12.0,
                         faults="flaky-msr"),
            ),
            seed=11,
        )
        a = run_cluster(config, 40.0)
        b = run_cluster(config, 40.0, jobs=2)
        assert trace_bytes(a) == trace_bytes(b)


class TestProportionalDelivery:
    def test_two_to_one_shares_deliver_two_to_one_power(self):
        run = run_cluster(two_node_config(), 80.0)
        hi = run.trace.node_mean_power_w("hi", after_s=30.0)
        lo = run.trace.node_mean_power_w("lo", after_s=30.0)
        assert hi / lo == pytest.approx(2.0, rel=0.05)

    def test_caps_never_sum_above_budget(self):
        run = run_cluster(two_node_config(), 80.0)
        assert run.max_cap_sum_w() <= 75.0 + 1e-9
        for grant in run.grants:
            assert grant.total_w <= 75.0 + 1e-9


class TestLifecycle:
    def test_crash_detected_and_cap_redistributed(self):
        config = ClusterConfig(
            budget_w=75.0,
            nodes=(
                NodeSpec("a", apps=BUSY, shares=1.0, min_cap_w=12.0),
                NodeSpec("b", apps=BUSY, shares=1.0, min_cap_w=12.0,
                         crashes_at_s=35.0),
            ),
            seed=3,
        )
        run = run_cluster(config, 80.0)
        # epoch 3 carries b's crashed report; from epoch 4 on b is gone
        assert any(
            r["b"].crashed for r in run.reports if "b" in r
        )
        final = run.grants[-1]
        assert "b" not in final.caps_w
        # the survivor inherits the freed budget up to its demand
        first_cap = run.grants[0].caps_w["a"]
        assert final.caps_w["a"] > first_cap
        assert run.max_cap_sum_w() <= 75.0 + 1e-9

    def test_announced_leave_reclaims_cap_at_boundary(self):
        config = ClusterConfig(
            budget_w=75.0,
            nodes=(
                NodeSpec("a", apps=BUSY, shares=1.0, min_cap_w=12.0),
                NodeSpec("b", apps=BUSY, shares=1.0, min_cap_w=12.0,
                         leaves_at_s=40.0),
            ),
            seed=3,
        )
        run = run_cluster(config, 80.0)
        # b steps epochs ending at or before 40 s, never after
        b_times = run.trace.series("b.power_w").times
        assert b_times and max(b_times) <= 40.0
        assert "b" not in run.grants[-1].caps_w

    def test_late_join_admitted_at_boundary(self):
        config = ClusterConfig(
            budget_w=75.0,
            nodes=(
                NodeSpec("a", apps=BUSY, shares=1.0, min_cap_w=12.0),
                NodeSpec("b", apps=BUSY, shares=1.0, min_cap_w=12.0,
                         joins_at_s=20.0),
            ),
            seed=3,
        )
        run = run_cluster(config, 60.0)
        b_times = run.trace.series("b.power_w").times
        # admitted at the first boundary >= 20 s: first sample at 30 s
        assert min(b_times) == pytest.approx(30.0)
        assert "b" not in run.grants[0].caps_w
        assert "b" in run.grants[-1].caps_w


class TestExperimentAndCache:
    def test_cluster_experiment_roundtrips_through_cache(self, tmp_path):
        from repro.experiments.cache import ResultCache
        from repro.experiments.cluster_exp import (
            default_cluster_config,
            run_cluster_experiment,
        )

        config = default_cluster_config(n_nodes=2, budget_w=75.0)
        cache = ResultCache(tmp_path)
        cold = run_cluster_experiment(
            config, duration_s=40.0, warmup_s=15.0, cache=cache
        )
        assert cache.stats.misses == 1 and cache.stats.stores == 1
        warm = run_cluster_experiment(
            config, duration_s=40.0, warmup_s=15.0, cache=cache
        )
        assert cache.stats.hits == 1
        assert warm == cold
        assert cold.cap_violations == 0
        assert cold.max_cap_sum_w <= config.budget_w + 1e-9

    def test_cluster_and_socket_keys_disjoint(self):
        from repro.experiments.cache import cache_key, cluster_cache_key
        from repro.experiments.cluster_exp import default_cluster_config

        cluster_key = cluster_cache_key(
            default_cluster_config(), 40.0, 15.0
        )
        assert len(cluster_key) == 64
        socket_key = cache_key(
            __import__("repro.config", fromlist=["ExperimentConfig"])
            .ExperimentConfig(
                platform="skylake", policy="frequency-shares",
                limit_w=50.0, apps=BUSY,
            ),
            40.0,
            15.0,
        )
        assert cluster_key != socket_key


class TestCli:
    def test_cluster_command(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        from repro.cli import main

        assert main([
            "cluster", "--nodes", "2", "--budget", "75",
            "--duration", "40", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "node0" in out and "node1" in out
        assert "cap violations 0" in out

    def test_cluster_command_with_crash(self, capsys, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        from repro.cli import main

        assert main([
            "cluster", "--nodes", "2", "--budget", "75",
            "--duration", "60", "--crash-node", "1",
            "--crash-at", "35", "--no-cache",
        ]) == 0
        out = capsys.readouterr().out
        assert "yes" in out  # the crashed column
