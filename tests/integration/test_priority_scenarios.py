"""Integration tests: the paper's priority-policy scenarios end to end.

Each test runs the full stack (chip + daemon + policy) and asserts a
behaviour Fig 7/8 reports.  Durations are short but long enough for the
state machine to settle.
"""

import pytest

from repro.config import AppSpec, ExperimentConfig, build_stack
from repro.core.types import Priority

TICK = 5e-3


def priority_config(platform, limit, hd_hp, ld_hp, hd_lp, ld_lp):
    apps = (
        [AppSpec("cactusBSSN", priority=Priority.HIGH)] * hd_hp
        + [AppSpec("leela", priority=Priority.HIGH)] * ld_hp
        + [AppSpec("cactusBSSN", priority=Priority.LOW)] * hd_lp
        + [AppSpec("leela", priority=Priority.LOW)] * ld_lp
    )
    return ExperimentConfig(
        platform=platform, policy="priority", limit_w=limit,
        apps=tuple(apps), tick_s=TICK,
    )


def run(config, seconds=40.0):
    stack = build_stack(config)
    stack.engine.run(seconds)
    return stack


class TestSkylakeStarvation:
    def test_5h5l_at_50w_admits_lp(self):
        """Paper: at 50 W LP runs when there are <= 5 HP apps."""
        stack = run(priority_config("skylake", 50.0, 5, 0, 0, 5))
        assert stack.daemon.policy.state == "admitted"
        record = stack.daemon.history[-1]
        assert not record.app_parked["leela#0"]
        assert record.app_frequency_mhz["leela#0"] >= 800.0

    def test_7h3l_at_50w_starves_lp(self):
        """Paper: at 50 W LP starves with 7 HP apps."""
        stack = run(priority_config("skylake", 50.0, 4, 3, 1, 2))
        record = stack.daemon.history[-1]
        assert record.app_parked["cactusBSSN#4"]  # the LP cactus

    def test_3h7l_at_40w_starves_and_boosts(self):
        """Paper: at 40 W with 3 HP apps, LP starve and HP run *faster*
        than at 85 W thanks to opportunistic scaling."""
        stack = run(priority_config("skylake", 40.0, 2, 1, 3, 4))
        record = stack.daemon.history[-1]
        assert record.app_parked["cactusBSSN#2"]
        hp_freq = record.app_frequency_mhz["cactusBSSN#0"]
        assert hp_freq > 2500.0  # above the 10-active all-core ceiling

    def test_1h9l_at_40w_admits_lp(self):
        """Paper Fig 7a: at 40 W LP runs in the 1H9L mix."""
        stack = run(priority_config("skylake", 40.0, 1, 0, 4, 5))
        assert stack.daemon.policy.state == "admitted"

    def test_limit_respected_in_steady_state(self):
        stack = run(priority_config("skylake", 50.0, 5, 0, 0, 5))
        tail = [s.package_power_w for s in stack.daemon.history[-8:]]
        assert sum(tail) / len(tail) <= 52.0


class TestRyzenStarvation:
    def test_4h4l_at_50w_admits(self):
        """Paper: at 50 W Ryzen LP run when there are <= 4 HP jobs."""
        stack = run(priority_config("ryzen", 50.0, 4, 0, 0, 4))
        assert stack.daemon.policy.state == "admitted"

    def test_4h4l_at_40w_starves(self):
        """Paper: at 40 W Ryzen LP run only with 2 HP jobs."""
        stack = run(priority_config("ryzen", 40.0, 4, 0, 0, 4))
        record = stack.daemon.history[-1]
        assert record.app_parked["leela#0"]

    def test_2h6l_at_40w_admits(self):
        stack = run(priority_config("ryzen", 40.0, 1, 1, 3, 3))
        assert stack.daemon.policy.state == "admitted"

    def test_core_power_ordering(self):
        """HD HP cores draw more power than LP cores at minimum."""
        stack = run(priority_config("ryzen", 50.0, 4, 0, 0, 4))
        record = stack.daemon.history[-1]
        hp_power = record.app_power_w["cactusBSSN#0"]
        lp_power = record.app_power_w["leela#0"]
        assert hp_power > lp_power


class TestRaplComparison:
    def test_rapl_ignores_priority(self):
        """Under RAPL, HP and LP run at the same frequency (Fig 7)."""
        apps = (
            [AppSpec("cactusBSSN", priority=Priority.HIGH)] * 5
            + [AppSpec("leela", priority=Priority.LOW)] * 5
        )
        config = ExperimentConfig(
            platform="skylake", policy="rapl", limit_w=40.0,
            apps=tuple(apps), tick_s=TICK,
        )
        stack = run(config, seconds=25.0)
        record = stack.daemon.history[-1]
        hp = record.app_frequency_mhz["cactusBSSN#0"]
        lp = record.app_frequency_mhz["leela#0"]
        assert hp == pytest.approx(lp, rel=0.02)
