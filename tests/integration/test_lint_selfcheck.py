"""repro-lint over the repo's own tree: the CI gate, exercised in-process.

The acceptance contract for the lint gate: a run over ``src/`` with the
committed baseline exits 0, and seeding one violation makes it exit
nonzero.  Also checks the committed ledger itself stays well-formed and
that the strict-mypy scope parses (the actual ``mypy --strict`` run
happens in CI, where mypy is installed).
"""

from __future__ import annotations

import io
import json
import shutil
from pathlib import Path

import pytest

from repro.analysis.baseline import Baseline, DEFAULT_BASELINE_NAME
from repro.analysis.cli import run_lint

REPO_ROOT = Path(__file__).resolve().parent.parent.parent
SRC = REPO_ROOT / "src"


class TestSelfCheck:
    def test_repo_src_is_clean_in_check_mode(self):
        out = io.StringIO()
        rc = run_lint(
            [str(SRC), "--root", str(REPO_ROOT), "--check"], stream=out
        )
        assert rc == 0, out.getvalue()

    def test_every_suppression_in_tree_is_ledgered_with_reason(self):
        ledger = Baseline.load(REPO_ROOT / DEFAULT_BASELINE_NAME)
        assert ledger.entries, "committed ledger must not be empty"
        for entry in ledger.entries:
            assert entry.reason, f"ledger entry without reason: {entry}"
            assert (REPO_ROOT / entry.path).exists(), entry.path

    def test_seeded_violation_fails_the_gate(self, tmp_path):
        # copy the tree, inject one wall-clock read into sim/, re-run
        work = tmp_path / "repo"
        (work / "src").parent.mkdir(parents=True, exist_ok=True)
        shutil.copytree(SRC, work / "src")
        shutil.copy(
            REPO_ROOT / DEFAULT_BASELINE_NAME, work / DEFAULT_BASELINE_NAME
        )
        target = work / "src" / "repro" / "sim" / "engine.py"
        target.write_text(
            target.read_text(encoding="utf-8")
            + "\n\nimport time\n\n\ndef _leak():\n    return time.time()\n",
            encoding="utf-8",
        )
        out = io.StringIO()
        rc = run_lint(
            [str(work / "src"), "--root", str(work), "--check"], stream=out
        )
        assert rc == 1
        assert "determinism" in out.getvalue()

    def test_seeded_graph_rule_violations_fail_the_gate(self, tmp_path):
        # one copied tree, three seeded whole-program violations: a
        # fork-worker module mutation, an unseeded RNG one call hop
        # from its construction site, and a snapshot pair missing a
        # mutable attribute — all three must block --check
        work = tmp_path / "repo"
        work.mkdir(parents=True, exist_ok=True)
        shutil.copytree(SRC, work / "src")
        shutil.copy(
            REPO_ROOT / DEFAULT_BASELINE_NAME, work / DEFAULT_BASELINE_NAME
        )
        seeded = work / "src" / "repro" / "cluster" / "_seeded.py"
        seeded.write_text(
            "import multiprocessing as mp\n"
            "import random\n"
            "import time\n"
            "\n"
            "_CACHE = {}\n"
            "\n"
            "\n"
            "def _seeded_worker():\n"
            "    _CACHE['k'] = 1\n"
            "\n"
            "\n"
            "def _seeded_spawn():\n"
            "    mp.Process(target=_seeded_worker).start()\n"
            "\n"
            "\n"
            "def _make_rng(seed):\n"
            "    return random.Random(seed)\n"
            "\n"
            "\n"
            "def _entropy_rng():\n"
            "    return _make_rng(time.time_ns())\n"
            "\n"
            "\n"
            "class _Partial:\n"
            "    def __init__(self):\n"
            "        self._level = 0.0\n"
            "        self._peak = 0.0\n"
            "\n"
            "    def observe(self, v):\n"
            "        self._level = v\n"
            "        self._peak = max(self._peak, v)\n"
            "\n"
            "    def snapshot(self):\n"
            "        return {'level': self._level}\n"
            "\n"
            "    def restore(self, state):\n"
            "        self._level = state['level']\n",
            encoding="utf-8",
        )
        out = io.StringIO()
        rc = run_lint(
            [str(work / "src"), "--root", str(work), "--check"], stream=out
        )
        rendered = out.getvalue()
        assert rc == 1
        assert "shared-state-race" in rendered
        assert "rng-provenance" in rendered
        assert "snapshot-completeness" in rendered
        assert "_seeded_worker" in rendered
        assert "'self._peak'" in rendered

    @pytest.mark.parametrize("rule, section", [
        ("shared-state-race", "§15.2"),
        ("rng-provenance", "§15.3"),
        ("snapshot-completeness", "§15.4"),
    ])
    def test_explain_covers_graph_rules(self, rule, section):
        out = io.StringIO()
        assert run_lint(["--explain", rule], stream=out) == 0
        text = out.getvalue()
        assert f"DESIGN.md {section}" in text

    def test_graph_summary_over_repo_resolves_worker_roots(self):
        out = io.StringIO()
        rc = run_lint(
            [str(SRC), "--root", str(REPO_ROOT), "--graph"], stream=out
        )
        text = out.getvalue()
        assert rc == 0
        assert "repro.cluster.stepper._worker_main" in text
        assert "repro.experiments.parallel._run_task" in text

    def test_json_report_shape_over_repo(self):
        out = io.StringIO()
        run_lint(
            [str(SRC), "--root", str(REPO_ROOT), "--json"], stream=out
        )
        payload = json.loads(out.getvalue())
        assert payload["blocking"] == []
        assert payload["files_checked"] > 50
        for finding in payload["suppressed"]:
            assert finding["reason"]


class TestStrictTypingScope:
    def test_mypy_strict_scope(self):
        """Run mypy --strict over the configured scope when available.

        The container image has no mypy (CI installs it); locally this
        skips rather than silently passing.
        """
        pytest.importorskip("mypy.api")
        from mypy import api

        stdout, stderr, status = api.run(
            ["--config-file", str(REPO_ROOT / "pyproject.toml")]
        )
        assert status == 0, stdout + stderr
