"""Per-rule tests for the repro-lint static analyser.

Every rule gets at least one snippet it must flag and one semantically
close snippet it must pass — the pass cases pin down the false-positive
boundary (seeded RNGs, unit-preserving helpers, sorted listings, ...)
just as hard as the flag cases pin down detection.
"""

from __future__ import annotations

import textwrap

from repro.analysis import SourceFile, default_registry
from repro.analysis.rules.cache_purity import CachePurityRule
from repro.analysis.rules.determinism import DeterminismRule
from repro.analysis.rules.fail_safety import FailSafetyRule
from repro.analysis.rules.float_equality import FloatEqualityRule
from repro.analysis.rules.kernel_purity import KernelPurityRule
from repro.analysis.rules.unit_safety import UnitSafetyRule, unit_of_name


def run_rule(rule, code: str, path: str = "src/repro/sim/snippet.py"):
    src = SourceFile.from_text(path, textwrap.dedent(code))
    return list(rule.check(src))


class TestDeterminism:
    # RNG checks moved to rng-provenance (tests/unit/test_lint_graph_rules.py);
    # determinism keeps wall clock, date, and filesystem-order contracts.

    def test_rng_is_not_this_rules_business_anymore(self):
        assert not run_rule(
            DeterminismRule(),
            """
            import random

            def jitter():
                return random.random()
            """,
        )

    def test_wall_clock_flagged_in_sim_scope(self):
        findings = run_rule(
            DeterminismRule(),
            """
            import time

            def stamp():
                return time.time()
            """,
        )
        assert len(findings) == 1
        assert "wall-clock" in findings[0].message

    def test_wall_clock_allowed_outside_deterministic_scope(self):
        assert not run_rule(
            DeterminismRule(),
            """
            import time

            def stamp():
                return time.time()
            """,
            path="src/repro/hw/snippet.py",
        )

    def test_unsorted_listdir_flagged_sorted_passes(self):
        flagged = run_rule(
            DeterminismRule(),
            """
            import os

            def entries(root):
                return os.listdir(root)
            """,
        )
        assert len(flagged) == 1
        assert "sorted" in flagged[0].message
        assert not run_rule(
            DeterminismRule(),
            """
            import os

            def entries(root):
                return sorted(os.listdir(root))
            """,
        )


class TestUnitSafety:
    def test_suffix_table(self):
        assert unit_of_name("limit_w") == "W"
        assert unit_of_name("freq_mhz") == "MHz"
        assert unit_of_name("shares") == "shares"
        assert unit_of_name("plain") is None

    def test_watts_plus_mhz_flagged(self):
        findings = run_rule(
            UnitSafetyRule(),
            """
            def broken(limit_w, freq_mhz):
                return limit_w + freq_mhz
            """,
        )
        assert len(findings) == 1
        assert "W" in findings[0].message and "MHz" in findings[0].message

    def test_same_unit_arithmetic_passes(self):
        assert not run_rule(
            UnitSafetyRule(),
            """
            def fine(limit_w, budget_w, duration_s, warmup_s):
                headroom_w = budget_w - limit_w
                return headroom_w, duration_s + warmup_s
            """,
        )

    def test_unit_traced_through_assignment(self):
        findings = run_rule(
            UnitSafetyRule(),
            """
            def broken(limit_w):
                cap = limit_w
                freq_mhz = 800.0
                return cap - freq_mhz
            """,
        )
        assert len(findings) == 1

    def test_converter_changes_unit(self):
        # ghz() yields MHz, so comparing against a _mhz name is fine...
        assert not run_rule(
            UnitSafetyRule(),
            """
            from repro.units import ghz

            def fine(freq_mhz):
                return freq_mhz < ghz(3.0)
            """,
        )
        # ...but feeding a converter the wrong unit is flagged.
        findings = run_rule(
            UnitSafetyRule(),
            """
            from repro.units import khz_to_mhz

            def broken(freq_mhz):
                return khz_to_mhz(freq_mhz)
            """,
        )
        assert len(findings) == 1
        assert "kHz" in findings[0].message

    def test_comparison_mix_flagged(self):
        findings = run_rule(
            UnitSafetyRule(),
            """
            def broken(power_w, limit_mhz):
                return power_w > limit_mhz
            """,
        )
        assert len(findings) == 1

    def test_keyword_argument_mix_flagged(self):
        findings = run_rule(
            UnitSafetyRule(),
            """
            def broken(set_cap, freq_mhz):
                set_cap(limit_w=freq_mhz)
            """,
        )
        assert len(findings) == 1
        assert "keyword" in findings[0].message

    def test_multiplication_combines_units_freely(self):
        assert not run_rule(
            UnitSafetyRule(),
            """
            def fine(power_w, duration_s):
                energy_j = power_w * duration_s
                return energy_j
            """,
        )


class TestFailSafety:
    def test_bare_except_flagged(self):
        findings = run_rule(
            FailSafetyRule(),
            """
            def read(msr):
                try:
                    return msr.read(0x611)
                except:
                    return 0
            """,
            path="src/repro/hw/snippet.py",
        )
        assert len(findings) == 1
        assert "bare" in findings[0].message

    def test_silent_broad_except_flagged_reraise_passes(self):
        flagged = run_rule(
            FailSafetyRule(),
            """
            def swallow(step):
                try:
                    step()
                except Exception:
                    pass
            """,
            path="src/repro/hw/snippet.py",
        )
        assert len(flagged) == 1
        assert not run_rule(
            FailSafetyRule(),
            """
            def ship(step):
                try:
                    step()
                except Exception as exc:
                    raise RuntimeError("contained") from exc
            """,
            path="src/repro/hw/snippet.py",
        )

    def test_unbounded_retry_flagged_bounded_passes(self):
        flagged = run_rule(
            FailSafetyRule(),
            """
            def spin(write):
                while True:
                    try:
                        write()
                        return
                    except OSError:
                        continue
            """,
            path="src/repro/hw/snippet.py",
        )
        assert len(flagged) == 1
        assert "unbounded" in flagged[0].message
        assert not run_rule(
            FailSafetyRule(),
            """
            def bounded(write, retries):
                for _ in range(retries):
                    try:
                        write()
                        return True
                    except OSError:
                        continue
                return False
            """,
            path="src/repro/hw/snippet.py",
        )

    def test_uncontained_msr_write_flagged_in_core(self):
        findings = run_rule(
            FailSafetyRule(),
            """
            class Writer:
                def apply(self, cpufreq, freq):
                    cpufreq.set_speed_mhz(0, freq)

                def recover(self):
                    self.park_core(0)

                def park_core(self, core):
                    self.parked = core
            """,
            path="src/repro/core/snippet.py",
        )
        assert len(findings) == 1
        assert "containment" in findings[0].message

    def test_contained_write_with_park_passes(self):
        assert not run_rule(
            FailSafetyRule(),
            """
            class Writer:
                def apply(self, cpufreq, freq):
                    try:
                        cpufreq.set_speed_mhz(0, freq)
                    except MSRError:
                        self.park_core(0)

                def park_core(self, core):
                    self.parked = core
            """,
            path="src/repro/core/snippet.py",
        )

    def test_writing_class_without_failsafe_flagged(self):
        findings = run_rule(
            FailSafetyRule(),
            """
            class Writer:
                def apply(self, cpufreq, freq):
                    try:
                        cpufreq.set_speed_mhz(0, freq)
                    except MSRError:
                        pass
            """,
            path="src/repro/core/snippet.py",
        )
        assert len(findings) == 1
        assert "park/quarantine" in findings[0].message

    def test_core_scope_only_for_write_containment(self):
        # the same uncontained write outside repro/core/ is not this
        # rule's business (sim code drives the chip model directly)
        assert not run_rule(
            FailSafetyRule(),
            """
            class Driver:
                def apply(self, cpufreq, freq):
                    cpufreq.set_speed_mhz(0, freq)
            """,
            path="src/repro/sim/snippet.py",
        )


class TestFloatEquality:
    def test_float_literal_comparison_flagged(self):
        findings = run_rule(
            FloatEqualityRule(),
            """
            def broken(error_w):
                return error_w == 0.0
            """,
        )
        assert len(findings) == 1
        assert "tolerance" in findings[0].message

    def test_unit_suffixed_name_flagged_even_vs_int(self):
        findings = run_rule(
            FloatEqualityRule(),
            """
            def broken(power_w, limit_w):
                return power_w != limit_w
            """,
        )
        assert len(findings) == 1

    def test_approx_eq_usage_passes(self):
        assert not run_rule(
            FloatEqualityRule(),
            """
            from repro.units import approx_eq, is_zero

            def fine(power_w, limit_w, error_w):
                return approx_eq(power_w, limit_w) and is_zero(error_w)
            """,
        )

    def test_int_comparisons_pass(self):
        assert not run_rule(
            FloatEqualityRule(),
            """
            def fine(n_ticks, period_ticks, value_khz):
                return n_ticks == period_ticks or value_khz == 800_000
            """,
        )

    def test_helper_bodies_are_exempt(self):
        assert not run_rule(
            FloatEqualityRule(),
            """
            def approx_eq(a, b):
                return a == b or abs(a - b) < 1e-9
            """,
        )

    def test_ordering_comparisons_pass(self):
        assert not run_rule(
            FloatEqualityRule(),
            """
            def fine(power_w, limit_w):
                return power_w > limit_w
            """,
        )


class TestCachePurity:
    def test_env_read_in_key_builder_flagged(self):
        findings = run_rule(
            CachePurityRule(),
            """
            import hashlib
            import os

            def cache_key(config):
                salt = os.environ.get("SALT", "")
                return hashlib.sha256(salt.encode()).hexdigest()
            """,
        )
        assert len(findings) == 1
        assert "os.environ" in findings[0].message

    def test_unsorted_json_dumps_flagged(self):
        findings = run_rule(
            CachePurityRule(),
            """
            import hashlib
            import json

            def cache_key(config):
                payload = json.dumps(config)
                return hashlib.sha256(payload.encode()).hexdigest()
            """,
        )
        assert len(findings) == 1
        assert "sort_keys" in findings[0].message

    def test_sorted_json_dumps_passes(self):
        assert not run_rule(
            CachePurityRule(),
            """
            import hashlib
            import json

            def cache_key(config):
                payload = json.dumps(config, sort_keys=True)
                return hashlib.sha256(payload.encode()).hexdigest()
            """,
        )

    def test_builtin_hash_flagged(self):
        findings = run_rule(
            CachePurityRule(),
            """
            import hashlib

            def cache_key(config):
                return hashlib.sha256(str(hash(config)).encode()).hexdigest()
            """,
        )
        assert len(findings) == 1
        assert "PYTHONHASHSEED" in findings[0].message

    def test_set_iteration_flagged_sorted_passes(self):
        flagged = run_rule(
            CachePurityRule(),
            """
            import hashlib

            def cache_key(names):
                parts = {n for n in names}
                return hashlib.sha256(str(parts).encode()).hexdigest()
            """,
        )
        assert len(flagged) == 1
        assert not run_rule(
            CachePurityRule(),
            """
            import hashlib

            def cache_key(names):
                parts = sorted({n for n in names})
                return hashlib.sha256(str(parts).encode()).hexdigest()
            """,
        )

    def test_non_key_functions_unconstrained(self):
        assert not run_rule(
            CachePurityRule(),
            """
            import os

            def cache_dir():
                return os.environ.get("REPRO_CACHE_DIR", "~/.cache")
            """,
        )


class TestKernelPurity:
    KERNEL_PATH = "src/repro/sim/kernel.py"

    def test_rule_only_applies_to_the_kernel_module(self):
        code = """
        def gather(chip):
            return [core.load for core in chip.cores]
        """
        assert run_rule(
            KernelPurityRule(), code, path=self.KERNEL_PATH
        )
        assert not run_rule(
            KernelPurityRule(), code, path="src/repro/sim/soa.py"
        )

    def test_for_loop_flagged(self):
        findings = run_rule(
            KernelPurityRule(),
            """
            def bad(rows):
                total = 0.0
                for row in rows:
                    total = total + row
                return total
            """,
            path=self.KERNEL_PATH,
        )
        assert any("for loop" in f.message for f in findings)

    def test_comprehension_flagged(self):
        findings = run_rule(
            KernelPurityRule(),
            """
            def bad(values):
                return [v * 2.0 for v in values]
            """,
            path=self.KERNEL_PATH,
        )
        assert any("comprehension" in f.message for f in findings)

    def test_object_attribute_flagged(self):
        findings = run_rule(
            KernelPurityRule(),
            """
            def bad(core):
                return core.effective_mhz * 2.0
            """,
            path=self.KERNEL_PATH,
        )
        assert len(findings) == 1
        assert "core.effective_mhz" in findings[0].message

    def test_derived_object_attribute_flagged(self):
        findings = run_rule(
            KernelPurityRule(),
            """
            def bad(chips):
                return chips[0].tick_s
            """,
            path=self.KERNEL_PATH,
        )
        assert len(findings) == 1
        assert ".tick_s" in findings[0].message

    def test_numpy_and_math_chains_pass(self):
        assert not run_rule(
            KernelPurityRule(),
            """
            import math

            import numpy as np

            TWO_PI = 2.0 * math.pi


            def good(seed_row, increments):
                stacked = np.concatenate(
                    (np.reshape(seed_row, (1, -1)), increments), axis=0
                )
                return np.add.accumulate(stacked, axis=0)
            """,
            path=self.KERNEL_PATH,
        )

    def test_shipped_kernel_is_clean(self):
        from pathlib import Path

        kernel = Path(__file__).resolve().parents[2] / (
            "src/repro/sim/kernel.py"
        )
        src = SourceFile.from_text(
            "src/repro/sim/kernel.py",
            kernel.read_text(encoding="utf-8"),
        )
        assert not list(KernelPurityRule().check(src))


class TestRegistry:
    def test_default_registry_has_all_nine_rules(self):
        names = default_registry().names()
        assert names == (
            "determinism", "unit-safety", "fail-safety",
            "float-equality", "cache-purity", "kernel-purity",
            "shared-state-race", "rng-provenance",
            "snapshot-completeness",
        )

    def test_findings_carry_location_and_design_ref(self):
        registry = default_registry()
        src = SourceFile.from_text(
            "src/repro/sim/snippet.py",
            "import time\n\n\ndef f():\n    return time.time()\n",
        )
        findings = registry.run(src)
        assert findings
        finding = findings[0]
        assert finding.path == "src/repro/sim/snippet.py"
        assert finding.line == 5
        assert finding.context == "return time.time()"
        rule = registry.rule(finding.rule)
        assert rule.design_ref.startswith("DESIGN.md §10")
