"""Tests for the daemon's error containment, retry, holdover, and safe mode."""

import pytest

from repro.core.daemon import (
    DaemonMode,
    HealthRecord,
    PowerDaemon,
    ResilienceConfig,
)
from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.types import ManagedApp
from repro.errors import ConfigError, MSRIOError
from repro.faults import FaultScenario, FaultyMSRFile
from repro.sched.pinning import pin_apps
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.telemetry.turbostat import CoreStats, TurbostatSample
from repro.workloads.spec import spec_app


class SwitchableMSR:
    """MSR wrapper with deterministically togglable read/write failures.

    Fault-rate proxies are great for storms but awkward for unit tests;
    this wrapper makes every failure explicit.
    """

    def __init__(self, inner):
        self._inner = inner
        self.fail_reads = False
        self.fail_writes = False
        self.fail_write_cores: set[int] | None = None  # None = all

    def __getattr__(self, name):
        return getattr(self._inner, name)

    def read(self, cpu, address):
        value = self._inner.read(cpu, address)
        if self.fail_reads:
            raise MSRIOError(f"injected read failure cpu {cpu}")
        return value

    def write(self, cpu, address, value):
        if self.fail_writes and (
            self.fail_write_cores is None or cpu in self.fail_write_cores
        ):
            raise MSRIOError(f"injected write failure cpu {cpu}")
        self._inner.write(cpu, address, value)


def build_daemon(platform, *, msr_factory=SwitchableMSR, resilience=None,
                 limit=50.0):
    chip = Chip(platform, tick_s=5e-3)
    engine = SimEngine(chip)
    placements = pin_apps(
        chip,
        [spec_app("leela", steady=True), spec_app("cactusBSSN", steady=True)],
    )
    managed = [
        ManagedApp(label=p.label, core_id=p.core_id, shares=s)
        for p, s in zip(placements, (90.0, 10.0))
    ]
    policy = FrequencySharesPolicy(platform, managed, limit)
    msr = msr_factory(chip.msr)
    daemon = PowerDaemon(chip, policy, msr=msr, resilience=resilience)
    return chip, engine, daemon, msr


class TestResilienceConfig:
    def test_defaults_valid(self):
        ResilienceConfig()

    @pytest.mark.parametrize(
        "kwargs",
        [
            {"max_write_retries": -1},
            {"safe_mode_after": 0},
            {"recover_after": 0},
            {"quarantine_after": 0},
            {"quarantine_probe_every": 0},
            {"frequency_slack": 0.9},
            {"max_plausible_power_factor": 0.0},
        ],
    )
    def test_bad_values_rejected(self, kwargs):
        with pytest.raises(ConfigError):
            ResilienceConfig(**kwargs)


class TestRetryAndParking:
    def test_clean_run_reports_healthy(self, skylake):
        chip, engine, daemon, _ = build_daemon(skylake)
        daemon.attach(engine)
        engine.run(3.0)
        for record in daemon.history:
            h = record.health
            assert h.mode == "normal"
            assert h.telemetry_ok and not h.holdover
            assert h.retries == 0 and h.failed_writes == 0
            assert h.quarantined == ()

    def test_write_retries_counted(self, skylake):
        chip, engine, daemon, msr = build_daemon(skylake)
        daemon.attach(engine)
        msr.fail_writes = True
        engine.run(1.0)
        h = daemon.history[-1].health
        # two managed cores, each write retried max_write_retries times
        cfg = daemon.resilience
        assert h.retries == 2 * cfg.max_write_retries
        assert h.failed_writes == 2

    def test_abandoned_write_parks_core(self, skylake):
        chip, engine, daemon, msr = build_daemon(skylake)
        daemon.attach(engine)
        msr.fail_writes = True
        msr.fail_write_cores = {0}
        engine.run(1.0)
        assert chip.cores[0].parked
        assert daemon.history[-1].app_parked["leela#0"]
        # the other app is untouched
        assert not daemon.history[-1].app_parked["cactusBSSN#0"]

    def test_recovered_write_unparks_core(self, skylake):
        chip, engine, daemon, msr = build_daemon(skylake)
        daemon.attach(engine)
        msr.fail_writes = True
        msr.fail_write_cores = {0}
        engine.run(1.0)
        assert chip.cores[0].parked
        msr.fail_writes = False
        engine.run(1.0)
        assert not chip.cores[0].parked
        assert not daemon.history[-1].app_parked["leela#0"]


class TestHoldover:
    def test_failed_reads_hold_last_good_sample(self, skylake):
        chip, engine, daemon, msr = build_daemon(skylake)
        daemon.attach(engine)
        engine.run(2.0)
        good = daemon.history[-1]
        targets_before = dict(good.targets_mhz)
        msr.fail_reads = True
        engine.run(1.0)
        record = daemon.history[-1]
        assert record.health.holdover
        assert not record.health.telemetry_ok
        # the stale sample is re-reported, targets are held
        assert record.package_power_w == good.package_power_w
        assert record.targets_mhz == targets_before

    def test_garbage_sample_rejected_and_held(self, skylake):
        scenario = FaultScenario(garbage_counter_rate=1.0, seed=3)
        chip, engine, daemon, _ = build_daemon(
            skylake,
            msr_factory=lambda inner: FaultyMSRFile(inner, scenario),
        )
        daemon.attach(engine)
        engine.run(2.0)
        assert all(not r.health.telemetry_ok for r in daemon.history)

    def test_no_sample_at_all_records_blind_iteration(self, skylake):
        chip, engine, daemon, msr = build_daemon(skylake)
        msr.fail_reads = True  # prime fails too
        daemon.attach(engine)
        engine.run(1.0)
        record = daemon.history[-1]
        assert not record.health.telemetry_ok
        assert not record.health.holdover
        assert record.package_power_w == 0.0
        assert record.app_power_w["leela#0"] is None


class TestValidation:
    def make_sample(self, daemon, **overrides):
        power = daemon.chip.platform.power
        core_kwargs = {
            "active_frequency_mhz": 2000.0,
            "busy_fraction": 0.9,
            "ips": 2e9,
            "power_w": None,
        }
        core_kwargs.update(
            {k: overrides.pop(k) for k in list(overrides)
             if k in core_kwargs}
        )
        sample_kwargs = {
            "timestamp_s": 1.0,
            "interval_s": 1.0,
            "package_power_w": power.tdp_watts,
        }
        sample_kwargs.update(overrides)
        cores = tuple(
            CoreStats(core_id=cpu, **core_kwargs)
            for cpu in daemon.chip.platform.core_ids()
        )
        return TurbostatSample(cores=cores, **sample_kwargs)

    @pytest.fixture
    def daemon(self, skylake):
        return build_daemon(skylake)[2]

    def test_plausible_sample_accepted(self, daemon):
        assert daemon._validate(self.make_sample(daemon))

    def test_zero_interval_rejected(self, daemon):
        assert not daemon._validate(
            self.make_sample(daemon, interval_s=0.0)
        )

    def test_power_too_high_rejected(self, daemon):
        tdp = daemon.chip.platform.power.tdp_watts
        assert not daemon._validate(
            self.make_sample(daemon, package_power_w=4.0 * tdp)
        )

    def test_power_too_low_rejected(self, daemon):
        # a stuck energy counter reads as 0 W; the uncore always draws
        assert not daemon._validate(
            self.make_sample(daemon, package_power_w=0.0)
        )

    def test_impossible_frequency_rejected(self, daemon):
        max_mhz = daemon.chip.platform.max_frequency_mhz
        assert not daemon._validate(
            self.make_sample(daemon, active_frequency_mhz=2.0 * max_mhz)
        )

    def test_busy_fraction_out_of_range_rejected(self, daemon):
        assert not daemon._validate(
            self.make_sample(daemon, busy_fraction=1.5)
        )

    def test_impossible_ips_rejected(self, daemon):
        assert not daemon._validate(self.make_sample(daemon, ips=1e15))


class TestQuarantine:
    def test_repeated_failures_quarantine_core(self, skylake):
        cfg = ResilienceConfig(quarantine_after=2, quarantine_probe_every=3)
        chip, engine, daemon, msr = build_daemon(skylake, resilience=cfg)
        daemon.attach(engine)
        msr.fail_writes = True
        msr.fail_write_cores = {0}
        engine.run(2.0)  # two abandoned writes -> quarantine
        assert daemon.quarantined_cores == (0,)
        assert daemon.history[-1].health.quarantined == (0,)
        assert chip.cores[0].parked

    def test_quarantined_core_not_written(self, skylake):
        cfg = ResilienceConfig(quarantine_after=1, quarantine_probe_every=50)
        chip, engine, daemon, msr = build_daemon(skylake, resilience=cfg)
        daemon.attach(engine)
        msr.fail_writes = True
        msr.fail_write_cores = {0}
        engine.run(1.0)
        assert daemon.quarantined_cores == (0,)
        failed_before = daemon.history[-1].health.failed_writes
        assert failed_before == 1
        engine.run(2.0)
        # no further write attempts (and thus no failures) on core 0
        assert all(
            r.health.failed_writes == 0 for r in daemon.history[-2:]
        )

    def test_probe_releases_recovered_core(self, skylake):
        cfg = ResilienceConfig(quarantine_after=1, quarantine_probe_every=2)
        chip, engine, daemon, msr = build_daemon(skylake, resilience=cfg)
        daemon.attach(engine)
        msr.fail_writes = True
        msr.fail_write_cores = {0}
        engine.run(1.0)
        assert daemon.quarantined_cores == (0,)
        msr.fail_writes = False
        engine.run(2.0)  # countdown reaches 0, probe lands
        assert daemon.quarantined_cores == ()
        assert not chip.cores[0].parked

    def test_failed_probe_backs_off(self, skylake):
        cfg = ResilienceConfig(quarantine_after=1, quarantine_probe_every=2)
        chip, engine, daemon, msr = build_daemon(skylake, resilience=cfg)
        daemon.attach(engine)
        msr.fail_writes = True
        msr.fail_write_cores = {0}
        engine.run(3.0)  # quarantined at t=1, probe fails at t=3
        assert daemon.quarantined_cores == (0,)
        entry = daemon._quarantine[0]
        assert entry.interval == 4  # doubled from 2

    def test_backoff_is_capped(self, skylake):
        cfg = ResilienceConfig(quarantine_after=1, quarantine_probe_every=2)
        chip, engine, daemon, msr = build_daemon(skylake, resilience=cfg)
        daemon.attach(engine)
        msr.fail_writes = True
        msr.fail_write_cores = {0}
        engine.run(120.0)
        assert daemon._quarantine[0].interval <= 2 * 8


class TestSafeMode:
    def force_safe(self, skylake, **cfg_kwargs):
        cfg = ResilienceConfig(safe_mode_after=3, recover_after=2,
                               **cfg_kwargs)
        chip, engine, daemon, msr = build_daemon(skylake, resilience=cfg)
        daemon.attach(engine)
        msr.fail_reads = True
        engine.run(3.0)
        return chip, engine, daemon, msr

    def test_consecutive_failures_escalate(self, skylake):
        chip, engine, daemon, _ = self.force_safe(skylake)
        assert daemon.mode is DaemonMode.SAFE
        assert daemon.history[-1].health.mode == "safe"
        assert daemon.history[-1].health.safe_mode_entries == 1

    def test_safe_mode_arms_rapl_backstop(self, skylake):
        chip, engine, daemon, _ = self.force_safe(skylake)
        # software policies normally run with the limiter at TDP; safe
        # mode pulls it down to the operator limit.
        assert chip.rapl.limit_w == daemon.policy.limit_w

    def test_safe_mode_floors_frequencies(self, skylake):
        chip, engine, daemon, _ = self.force_safe(skylake)
        floor = skylake.policy_floor_mhz
        for core_id in daemon._core_of.values():
            assert chip.requested_frequency(core_id) == floor

    def test_recovery_restores_normal_operation(self, skylake):
        chip, engine, daemon, msr = self.force_safe(skylake)
        msr.fail_reads = False
        engine.run(4.0)
        assert daemon.mode is DaemonMode.NORMAL
        assert daemon.history[-1].health.mode == "normal"
        # the TDP backstop is restored for software policies
        assert chip.rapl.limit_w == skylake.power.tdp_watts
        # and the initial distribution is re-applied (top share at max)
        assert chip.requested_frequency(0) > skylake.policy_floor_mhz

    def test_ryzen_safe_mode_floors_without_rapl(self, ryzen):
        cfg = ResilienceConfig(safe_mode_after=3)
        chip, engine, daemon, msr = build_daemon(ryzen, resilience=cfg,
                                                 limit=60.0)
        daemon.attach(engine)
        msr.fail_reads = True
        engine.run(3.0)
        assert chip.rapl is None
        assert daemon.mode is DaemonMode.SAFE
        floor = ryzen.policy_floor_mhz
        for core_id in daemon._core_of.values():
            assert chip.requested_frequency(core_id) == floor

    def test_iteration_never_raises_under_total_failure(self, skylake):
        chip, engine, daemon, msr = build_daemon(skylake)
        daemon.attach(engine)
        msr.fail_reads = True
        msr.fail_writes = True
        engine.run(10.0)  # would raise long before this if uncontained
        assert len(daemon.history) == 10
        assert daemon.mode is DaemonMode.SAFE

    def test_default_health_record_is_clean(self):
        h = HealthRecord()
        assert h.mode == "normal"
        assert h.telemetry_ok and not h.holdover
        assert h.safe_mode_entries == 0


class TestSafeModeLatch:
    """The cluster lease layer's supervisor latch over safe mode."""

    def test_force_safe_mode_enters_immediately(self, skylake):
        chip, engine, daemon, _ = build_daemon(skylake)
        daemon.attach(engine)
        daemon.force_safe_mode()
        assert daemon.mode is DaemonMode.SAFE
        assert daemon.history == []  # no iteration needed to enter

    def test_latch_holds_through_telemetry_recovery(self, skylake):
        cfg = ResilienceConfig(recover_after=2)
        chip, engine, daemon, _ = build_daemon(skylake, resilience=cfg)
        daemon.attach(engine)
        daemon.force_safe_mode()
        engine.run(10.0)  # telemetry is healthy the whole time
        assert daemon.mode is DaemonMode.SAFE

    def test_release_on_sick_node_keeps_backstop(self, skylake):
        cfg = ResilienceConfig(recover_after=2)
        chip, engine, daemon, msr = build_daemon(skylake, resilience=cfg)
        daemon.attach(engine)
        daemon.force_safe_mode()
        msr.fail_reads = True
        engine.run(5.0)  # latched *and* sick: no good-sample streak
        daemon.release_safe_mode()
        assert daemon.mode is DaemonMode.SAFE  # release alone is not exit
        msr.fail_reads = False
        engine.run(3.0)  # recover_after good samples gate the exit
        assert daemon.mode is DaemonMode.NORMAL

    def test_release_after_proven_health_exits_immediately(self, skylake):
        # health proved while the latch held counts: release must not
        # make the node start the recover_after streak over
        cfg = ResilienceConfig(recover_after=2)
        chip, engine, daemon, _ = build_daemon(skylake, resilience=cfg)
        daemon.attach(engine)
        daemon.force_safe_mode()
        engine.run(5.0)  # healthy the whole latched stretch
        assert daemon.mode is DaemonMode.SAFE
        daemon.release_safe_mode()
        assert daemon.mode is DaemonMode.NORMAL  # no extra iteration

    def test_release_preserves_a_partial_streak(self, skylake):
        # the lease renews mid-streak: the good samples already banked
        # while latched must keep counting toward the exit
        cfg = ResilienceConfig(recover_after=3)
        chip, engine, daemon, _ = build_daemon(skylake, resilience=cfg)
        daemon.attach(engine)
        daemon.force_safe_mode()
        engine.run(2.0)  # 2 of the 3 required good samples
        daemon.release_safe_mode()
        assert daemon.mode is DaemonMode.SAFE
        engine.run(1.0)  # the third — not three more
        assert daemon.mode is DaemonMode.NORMAL

    def test_safe_latched_tracks_force_and_release(self, skylake):
        chip, engine, daemon, _ = build_daemon(skylake)
        daemon.attach(engine)
        assert not daemon.safe_latched
        daemon.force_safe_mode()
        assert daemon.safe_latched
        daemon.release_safe_mode()
        assert not daemon.safe_latched

    def test_latch_survives_simulated_restart(self, skylake):
        # a node reboot tears the whole stack down and builds a fresh
        # daemon, latched at boot before its first tick: the boot latch
        # must hold through arbitrarily long healthy running, and the
        # eventual release must honor the streak proved while latched
        cfg = ResilienceConfig(recover_after=2)
        chip, engine, daemon, _ = build_daemon(skylake, resilience=cfg)
        daemon.attach(engine)
        engine.run(2.0)
        assert daemon.mode is DaemonMode.NORMAL  # first incarnation up
        # "crash": the first stack is dropped; the reboot latches the
        # fresh daemon before any telemetry history exists
        chip2, engine2, daemon2, _ = build_daemon(skylake, resilience=cfg)
        daemon2.attach(engine2)
        daemon2.force_safe_mode()
        assert daemon2.safe_latched
        engine2.run(10.0)  # healthy, but the supervisor never released
        assert daemon2.mode is DaemonMode.SAFE
        assert daemon2.safe_latched
        daemon2.release_safe_mode()
        assert daemon2.mode is DaemonMode.NORMAL

    def test_force_is_idempotent_and_counts_one_entry(self, skylake):
        chip, engine, daemon, _ = build_daemon(skylake)
        daemon.attach(engine)
        daemon.force_safe_mode()
        daemon.force_safe_mode()
        engine.run(2.0)
        assert daemon.history[-1].health.safe_mode_entries == 1

    def test_backstop_clamps_below_rapl_range(self, skylake):
        # a cluster floor cap can sit below the hardware limiter's
        # supported range: the backstop arms at the closest bound
        # instead of failing the write
        lo, _hi = skylake.rapl_limit_range_w
        chip, engine, daemon, _ = build_daemon(skylake, limit=lo - 5.0)
        daemon.attach(engine)
        daemon.force_safe_mode()
        assert chip.rapl.limit_w == lo
