"""Tests for the analytic application model."""

import pytest

from repro.errors import ConfigError
from repro.workloads.app import AppModel, AppPhase, RunningApp


def make_app(**overrides) -> AppModel:
    base = dict(
        name="toy",
        instructions=1e9,
        mem_fraction=0.2,
        c_eff=1.0,
        base_ipc=1.5,
    )
    base.update(overrides)
    return AppModel(**base)


class TestValidation:
    def test_valid_app(self):
        assert make_app().name == "toy"

    def test_empty_name_rejected(self):
        with pytest.raises(ConfigError):
            make_app(name="")

    def test_nonpositive_instructions_rejected(self):
        with pytest.raises(ConfigError):
            make_app(instructions=0)

    def test_service_has_no_instruction_budget(self):
        assert make_app(instructions=None).instructions is None

    def test_mem_fraction_bounds(self):
        with pytest.raises(ConfigError):
            make_app(mem_fraction=1.0)
        with pytest.raises(ConfigError):
            make_app(mem_fraction=-0.1)

    def test_nonpositive_c_eff_rejected(self):
        with pytest.raises(ConfigError):
            make_app(c_eff=0.0)

    def test_nonpositive_ipc_rejected(self):
        with pytest.raises(ConfigError):
            make_app(base_ipc=-1.0)

    def test_phase_validation(self):
        with pytest.raises(ConfigError):
            AppPhase(ipc_amplitude=1.5)
        with pytest.raises(ConfigError):
            AppPhase(period_s=0)


class TestFrequencyResponse:
    def test_speedup_at_reference_is_one(self):
        assert make_app().speedup(3000.0, 3000.0) == pytest.approx(1.0)

    def test_speedup_monotonic(self):
        app = make_app()
        speeds = [app.speedup(f, 3000.0) for f in (1000, 2000, 3000, 4000)]
        assert all(b > a for a, b in zip(speeds, speeds[1:]))

    def test_compute_bound_app_scales_linearly(self):
        app = make_app(mem_fraction=0.0)
        assert app.speedup(1500.0, 3000.0) == pytest.approx(0.5)

    def test_memory_bound_app_sublinear(self):
        app = make_app(mem_fraction=0.5)
        assert app.speedup(6000.0, 3000.0) < 2.0

    def test_memory_fraction_limits_max_speedup(self):
        """With mem_fraction=m, speedup is bounded by 1/m — infinite
        frequency cannot shrink memory time (paper section 2.1)."""
        app = make_app(mem_fraction=0.25)
        assert app.speedup(1e9, 3000.0) < 4.0

    def test_ips_at_reference(self):
        app = make_app(base_ipc=2.0)
        assert app.ips(3000.0, 3000.0) == pytest.approx(2.0 * 3000e6)

    def test_invalid_frequency_rejected(self):
        with pytest.raises(ConfigError):
            make_app().speedup(-1.0, 3000.0)


class TestActivity:
    def test_compute_bound_always_active(self):
        app = make_app(mem_fraction=0.0)
        assert app.compute_activity(2000.0, 3000.0) == pytest.approx(1.0)

    def test_activity_falls_with_frequency(self):
        app = make_app(mem_fraction=0.3)
        assert app.compute_activity(3000.0, 3000.0) < app.compute_activity(
            1000.0, 3000.0
        )

    def test_power_factor_bounded(self):
        app = make_app(mem_fraction=0.4)
        factor = app.activity_power_factor(2000.0, 3000.0)
        assert app.stall_power_factor < factor <= 1.0


class TestPhases:
    def test_no_phase_is_flat(self):
        app = make_app()
        assert app.ipc_factor(13.7) == 1.0
        assert app.power_factor(13.7) == 1.0

    def test_phase_modulates_within_amplitude(self):
        app = make_app(phase=AppPhase(ipc_amplitude=0.1, power_amplitude=0.1))
        for t in range(0, 120, 7):
            assert 0.9 <= app.ipc_factor(float(t)) <= 1.1
            assert 0.9 <= app.power_factor(float(t)) <= 1.1

    def test_phase_is_deterministic(self):
        app = make_app(phase=AppPhase(ipc_amplitude=0.05))
        assert app.ipc_factor(10.0) == app.ipc_factor(10.0)

    def test_different_apps_different_offsets(self):
        a = make_app(name="alpha", phase=AppPhase(ipc_amplitude=0.05))
        b = make_app(name="beta", phase=AppPhase(ipc_amplitude=0.05))
        values_a = [a.ipc_factor(float(t)) for t in range(10)]
        values_b = [b.ipc_factor(float(t)) for t in range(10)]
        assert values_a != values_b


class TestRunningApp:
    def test_advance_retires_instructions(self):
        run = RunningApp(make_app(instructions=None))
        retired = run.advance(1.0, 3000.0, 3000.0, 0.0)
        assert retired == pytest.approx(1.5 * 3000e6)

    def test_finishes_exactly_at_budget(self):
        run = RunningApp(make_app(instructions=1e9, base_ipc=1.0,
                                  mem_fraction=0.0))
        total = 0.0
        for _ in range(100):
            total += run.advance(0.01, 3000.0, 3000.0, 0.0)
            if run.finished:
                break
        assert run.finished
        assert total == pytest.approx(1e9)

    def test_finished_app_retires_nothing(self):
        run = RunningApp(make_app(instructions=1.0))
        run.advance(1.0, 3000.0, 3000.0, 0.0)
        assert run.finished
        assert run.advance(1.0, 3000.0, 3000.0, 0.0) == 0.0

    def test_share_scales_progress(self):
        full = RunningApp(make_app(instructions=None))
        half = RunningApp(make_app(instructions=None))
        r_full = full.advance(1.0, 3000.0, 3000.0, 0.0, share=1.0)
        r_half = half.advance(1.0, 3000.0, 3000.0, 0.0, share=0.5)
        assert r_half == pytest.approx(r_full / 2)

    def test_progress_fraction(self):
        run = RunningApp(make_app(instructions=3.0e9, base_ipc=1.0,
                                  mem_fraction=0.0))
        run.advance(0.5, 3000.0, 3000.0, 0.0)
        assert run.progress() == pytest.approx(0.5)

    def test_service_progress_is_zero(self):
        run = RunningApp(make_app(instructions=None))
        run.advance(1.0, 3000.0, 3000.0, 0.0)
        assert run.progress() == 0.0

    def test_labels_unique_by_instance(self):
        a = RunningApp(make_app(), instance=0)
        b = RunningApp(make_app(), instance=1)
        assert a.label != b.label

    def test_bad_share_rejected(self):
        run = RunningApp(make_app())
        with pytest.raises(ConfigError):
            run.advance(1.0, 3000.0, 3000.0, 0.0, share=1.5)

    def test_with_instructions_copy(self):
        app = make_app()
        service = app.with_instructions(None)
        assert service.instructions is None
        assert app.instructions == 1e9
