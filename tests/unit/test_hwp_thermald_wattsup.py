"""Tests for the HWP/CPPC controller, thermald daemon, and Watts Up meter."""

import pytest

from repro.core.thermal_daemon import ThermalDaemon, ThermalDaemonConfig
from repro.errors import ConfigError
from repro.hw.hwp import (
    HWP_PERF_MAX,
    HWP_PERF_MIN,
    HwpController,
    HwpRequest,
)
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad
from repro.sim.engine import SimEngine
from repro.sim.thermal import ThermalConfig, ThermalModel
from repro.telemetry.wattsup import (
    WattsUpConfig,
    WattsUpMeter,
    verify_rapl_against_meter,
)
from repro.workloads.app import RunningApp
from repro.workloads.spec import spec_app


def loaded_chip(platform, name="gcc", cores=(0,), freq=2200.0):
    chip = Chip(platform)
    for i, core_id in enumerate(cores):
        app = RunningApp(spec_app(name, steady=True), instance=i)
        chip.assign_load(
            core_id, BatchCoreLoad(app, platform.reference_frequency_mhz)
        )
        chip.set_requested_frequency(core_id, freq)
    return chip


class TestHwpRequest:
    def test_defaults_valid(self):
        HwpRequest().validate()

    def test_bad_ranges_rejected(self):
        with pytest.raises(ConfigError):
            HwpRequest(min_perf=0).validate()
        with pytest.raises(ConfigError):
            HwpRequest(min_perf=200, max_perf=100).validate()
        with pytest.raises(ConfigError):
            HwpRequest(min_perf=50, max_perf=100, desired_perf=200).validate()


class TestHwpController:
    def test_perf_scale_maps_frequency_range(self, skylake):
        hwp = HwpController(Chip(skylake))
        assert hwp.perf_to_mhz(HWP_PERF_MIN) == skylake.min_frequency_mhz
        assert hwp.perf_to_mhz(HWP_PERF_MAX) == skylake.max_frequency_mhz

    def test_scale_roundtrip(self, skylake):
        hwp = HwpController(Chip(skylake))
        for perf in (1, 64, 128, 255):
            assert hwp.mhz_to_perf(hwp.perf_to_mhz(perf)) == perf

    def test_desired_perf_is_honoured(self, skylake):
        chip = loaded_chip(skylake)
        hwp = HwpController(chip)
        hwp.set_request(0, HwpRequest(desired_perf=128))
        hwp.update()
        expected = skylake.pstates.quantize(
            hwp.perf_to_mhz(128), nearest=True
        ).frequency_mhz
        assert chip.requested_frequency(0) == expected

    def test_autonomous_climbs_compute_bound_app(self, skylake):
        chip = loaded_chip(skylake, name="exchange2", freq=800.0)
        engine = SimEngine(chip)
        hwp = HwpController(chip)
        hwp.attach(engine, period_s=0.05)
        engine.run(8.0)
        assert chip.requested_frequency(0) >= 2600.0

    def test_autonomous_respects_max_hint(self, skylake):
        chip = loaded_chip(skylake, name="exchange2", freq=800.0)
        engine = SimEngine(chip)
        hwp = HwpController(chip)
        hwp.set_request(0, HwpRequest(max_perf=100))
        hwp.attach(engine, period_s=0.05)
        engine.run(5.0)
        ceiling = hwp.perf_to_mhz(100)
        assert chip.requested_frequency(0) <= ceiling + 100.0

    def test_autonomous_backs_off_avx_saturated_app(self, skylake):
        """An AVX app's effective clock pins at the cap, so frequency
        requests above it buy zero IPS — autonomous HWP should not pin
        the request at maximum."""
        chip = loaded_chip(skylake, name="cam4", freq=800.0)
        engine = SimEngine(chip)
        hwp = HwpController(chip)
        hwp.attach(engine, period_s=0.05)
        engine.run(12.0)
        # stabilises near the 1700 MHz AVX cap, not at 3000
        assert chip.requested_frequency(0) < 2400.0

    def test_bad_core_rejected(self, skylake):
        hwp = HwpController(Chip(skylake))
        with pytest.raises(Exception):
            hwp.set_request(99, HwpRequest())


class TestWattsUp:
    def test_meter_samples_at_period(self):
        meter = WattsUpMeter(WattsUpConfig(sample_period_s=0.5))
        for _ in range(2000):  # 2 s at 1 ms
            meter.observe(40.0, 1e-3)
        assert len(meter.samples_w) == 4

    def test_wall_power_above_package(self):
        meter = WattsUpMeter()
        for _ in range(3000):
            meter.observe(40.0, 1e-3)
        assert meter.mean_wall_power_w() > 40.0

    def test_implied_package_power_recovers_truth(self):
        meter = WattsUpMeter()
        for _ in range(30000):
            meter.observe(40.0, 1e-3)
        assert meter.implied_package_power_w() == pytest.approx(
            40.0, rel=0.02
        )

    def test_no_samples_raises(self):
        with pytest.raises(ConfigError):
            WattsUpMeter().mean_wall_power_w()

    def test_bad_config_rejected(self):
        with pytest.raises(ConfigError):
            WattsUpConfig(psu_efficiency=0.0)

    def test_rapl_verifies_against_meter(self, skylake):
        """Paper section 3.1: RAPL readings verified accurate against a
        Watts Up meter."""
        chip = loaded_chip(skylake, cores=(0, 1, 2, 3))
        error = verify_rapl_against_meter(chip, duration_s=10.0)
        assert error < 0.02


class TestThermalDaemon:
    def _hot_chip(self, skylake):
        return loaded_chip(
            skylake, name="cactusBSSN",
            cores=tuple(range(10)), freq=2200.0,
        )

    def test_no_action_below_trip(self, skylake):
        chip = loaded_chip(skylake)  # one core: cool
        daemon = ThermalDaemon(chip, ThermalModel())
        for _ in range(2000):
            chip.tick()
            daemon.step()
        assert daemon.power_target_w == daemon.config.max_target_w
        assert daemon.trips == 0

    def test_trip_lowers_target(self, skylake):
        chip = self._hot_chip(skylake)
        # a toasty enclosure so ~80 W trips the 80 C point
        thermal = ThermalModel(ThermalConfig(ambient_c=45.0, tau_s=1.0))
        daemon = ThermalDaemon(chip, thermal)
        engine = SimEngine(chip)
        daemon.attach(engine)
        engine.run(8.0)
        assert daemon.trips >= 1
        assert daemon.power_target_w < daemon.config.max_target_w

    def test_enforce_with_rapl_cools_the_chip(self, skylake):
        chip = self._hot_chip(skylake)
        thermal = ThermalModel(ThermalConfig(ambient_c=45.0, tau_s=1.0))
        daemon = ThermalDaemon(chip, thermal)
        engine = SimEngine(chip)
        daemon.attach(engine)
        engine.every(1.0, lambda _t: daemon.enforce_with_rapl())
        engine.run(25.0)
        # closed loop: power reduced, temperature pulled back to the trip
        assert chip.last_package_power_w < 80.0
        assert daemon.temperature_c == pytest.approx(
            daemon.config.trip_c, abs=4.0
        )

    def test_enforce_without_rapl_rejected(self, ryzen):
        chip = Chip(ryzen)
        daemon = ThermalDaemon(chip, ThermalModel())
        with pytest.raises(ConfigError):
            daemon.enforce_with_rapl()

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            ThermalDaemonConfig(gain_w_per_c=0)
        with pytest.raises(ConfigError):
            ThermalDaemonConfig(min_target_w=90.0, max_target_w=85.0)
