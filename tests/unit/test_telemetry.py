"""Tests for counters, turbostat, and traces."""

import pytest

from repro.errors import ConfigError, PlatformError
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad
from repro.telemetry.counters import read_snapshot
from repro.telemetry.trace import Trace, TraceSeries
from repro.telemetry.turbostat import Turbostat
from repro.workloads.app import RunningApp
from repro.workloads.spec import spec_app


def busy_chip(platform, name="gcc", freq=None):
    chip = Chip(platform)
    app = RunningApp(spec_app(name, steady=True))
    chip.assign_load(0, BatchCoreLoad(app, platform.reference_frequency_mhz))
    chip.set_requested_frequency(
        0, freq or platform.reference_frequency_mhz
    )
    return chip


class TestSnapshots:
    def test_delta_derives_power(self, skylake):
        chip = busy_chip(skylake)
        chip.run_ticks(10)
        before = read_snapshot(skylake, chip.msr, chip.time_s)
        chip.run_ticks(1000)
        after = read_snapshot(skylake, chip.msr, chip.time_s)
        delta = before.delta(after)
        assert delta.package_power_w() == pytest.approx(
            chip.last_package_power_w, rel=0.05
        )

    def test_delta_derives_frequency(self, skylake):
        chip = busy_chip(skylake, freq=1400.0)
        chip.run_ticks(500)
        before = read_snapshot(skylake, chip.msr, chip.time_s)
        chip.run_ticks(500)
        after = read_snapshot(skylake, chip.msr, chip.time_s)
        delta = before.delta(after)
        assert delta.active_frequency_mhz(0, 2200.0) == pytest.approx(
            1400.0, rel=0.02
        )

    def test_idle_core_frequency_zero(self, skylake):
        chip = busy_chip(skylake)
        chip.run_ticks(100)
        before = read_snapshot(skylake, chip.msr, chip.time_s)
        chip.run_ticks(100)
        after = read_snapshot(skylake, chip.msr, chip.time_s)
        assert before.delta(after).active_frequency_mhz(4, 2200.0) == 0.0

    def test_core_power_needs_feature(self, skylake):
        chip = busy_chip(skylake)
        chip.run_ticks(20)
        snap = read_snapshot(skylake, chip.msr, chip.time_s)
        chip.run_ticks(20)
        delta = snap.delta(read_snapshot(skylake, chip.msr, chip.time_s))
        with pytest.raises(PlatformError):
            delta.core_power_w(0)

    def test_ryzen_core_power(self, ryzen):
        chip = busy_chip(ryzen, freq=3000.0)
        chip.run_ticks(100)
        before = read_snapshot(ryzen, chip.msr, chip.time_s)
        chip.run_ticks(1000)
        after = read_snapshot(ryzen, chip.msr, chip.time_s)
        delta = before.delta(after)
        assert delta.core_power_w(0) == pytest.approx(
            chip.last_core_powers_w[0], rel=0.05
        )

    def test_out_of_order_snapshots_rejected(self, skylake):
        chip = busy_chip(skylake)
        chip.run_ticks(10)
        later = read_snapshot(skylake, chip.msr, chip.time_s)
        earlier = later.__class__(
            timestamp_s=later.timestamp_s + 1,
            aperf=later.aperf,
            mperf=later.mperf,
            instructions=later.instructions,
            pkg_energy_uj=later.pkg_energy_uj,
            core_energy_uj=later.core_energy_uj,
        )
        with pytest.raises(PlatformError):
            earlier.delta(later)

    def test_busy_fraction(self, skylake):
        chip = busy_chip(skylake)
        chip.run_ticks(100)
        before = read_snapshot(skylake, chip.msr, chip.time_s)
        chip.run_ticks(100)
        delta = before.delta(read_snapshot(skylake, chip.msr, chip.time_s))
        assert delta.busy_fraction(0, 2200.0) == pytest.approx(1.0, abs=0.02)
        assert delta.busy_fraction(5, 2200.0) == 0.0


class TestTurbostat:
    def test_sample_reports_power_and_freq(self, skylake):
        chip = busy_chip(skylake, freq=1800.0)
        stat = Turbostat(skylake, chip.msr)
        chip.run_ticks(10)
        stat.prime(chip.time_s)
        chip.run_ticks(1000)
        sample = stat.sample(chip.time_s)
        assert sample.package_power_w == pytest.approx(
            chip.last_package_power_w, rel=0.05
        )
        assert sample.core(0).active_frequency_mhz == pytest.approx(
            1800.0, rel=0.02
        )

    def test_unprimed_sample_raises(self, skylake):
        chip = busy_chip(skylake)
        stat = Turbostat(skylake, chip.msr)
        chip.run_ticks(10)
        assert not stat.primed
        with pytest.raises(PlatformError):
            stat.sample(chip.time_s)
        stat.prime(chip.time_s)
        assert stat.primed

    def test_every_emitted_sample_lands_in_history(self, skylake):
        chip = busy_chip(skylake)
        stat = Turbostat(skylake, chip.msr)
        stat.prime(chip.time_s)
        chip.run_ticks(100)
        first = stat.sample(chip.time_s)
        assert first.interval_s > 0.0
        assert stat.history == [first]

    def test_history_recorded(self, skylake):
        chip = busy_chip(skylake)
        stat = Turbostat(skylake, chip.msr)
        stat.prime(chip.time_s)
        for _ in range(3):
            chip.run_ticks(100)
            stat.sample(chip.time_s)
        assert len(stat.history) == 3

    def test_core_power_none_on_skylake(self, skylake):
        chip = busy_chip(skylake)
        stat = Turbostat(skylake, chip.msr)
        stat.prime(chip.time_s)
        chip.run_ticks(100)
        assert stat.sample(chip.time_s).core(0).power_w is None

    def test_core_power_present_on_ryzen(self, ryzen):
        chip = busy_chip(ryzen, freq=3000.0)
        stat = Turbostat(ryzen, chip.msr)
        stat.prime(chip.time_s)
        chip.run_ticks(500)
        assert stat.sample(chip.time_s).core(0).power_w > 0

    def test_unknown_core_in_sample(self, skylake):
        chip = busy_chip(skylake)
        stat = Turbostat(skylake, chip.msr)
        stat.prime(chip.time_s)
        chip.run_ticks(10)
        with pytest.raises(PlatformError):
            stat.sample(chip.time_s).core(77)

    def test_total_ips(self, skylake):
        chip = busy_chip(skylake)
        stat = Turbostat(skylake, chip.msr)
        stat.prime(chip.time_s)
        chip.run_ticks(500)
        sample = stat.sample(chip.time_s)
        assert sample.total_ips() == pytest.approx(
            sample.core(0).ips, rel=1e-6
        )


class TestTrace:
    def test_record_and_stats(self):
        trace = Trace()
        for i in range(10):
            trace.record("power", float(i), float(i))
        series = trace.series("power")
        assert series.mean() == pytest.approx(4.5)
        assert series.median() == pytest.approx(4.5)
        assert series.last() == 9.0

    def test_boxplot_summary_ordering(self):
        series = TraceSeries("x")
        for i in range(100):
            series.append(float(i), float(i))
        box = series.boxplot_summary()
        assert box["p1"] <= box["q1"] <= box["median"] <= box["q3"] <= box["p99"]

    def test_window(self):
        series = TraceSeries("x")
        for i in range(10):
            series.append(float(i), float(i))
        windowed = series.window(3.0, 6.0)
        assert windowed.values == [3.0, 4.0, 5.0, 6.0]

    def test_time_ordering_enforced(self):
        series = TraceSeries("x")
        series.append(1.0, 0.0)
        with pytest.raises(ConfigError):
            series.append(0.5, 0.0)

    def test_empty_series_stats_raise(self):
        with pytest.raises(ConfigError):
            TraceSeries("x").mean()

    def test_unknown_series_raises(self):
        with pytest.raises(ConfigError):
            Trace().series("nope")

    def test_contains(self):
        trace = Trace()
        trace.record("a", 0.0, 1.0)
        assert "a" in trace
        assert "b" not in trace
        assert trace.names() == ("a",)
