"""Tests for the fault-injection substrate (scenarios, MSR proxy, ticks)."""

import pytest

from repro.errors import FaultConfigError, MSRIOError
from repro.faults import (
    CRASH_SCENARIOS,
    SCENARIOS,
    AppCrash,
    CrashScenario,
    FaultScenario,
    FaultyMSRFile,
    NodeRestart,
    TickFaultGate,
    get_crash_scenario,
    get_scenario,
)
from repro.hw import msr as msrdef
from repro.sim.chip import Chip


def busy_read_loop(msr, platform, n=200):
    """Issue a deterministic stream of telemetry reads."""
    values = []
    for _ in range(n):
        for cpu in platform.core_ids():
            values.append(msr.read(cpu, msrdef.IA32_APERF))
    return values


class TestScenario:
    def test_known_scenarios_valid(self):
        for name in SCENARIOS:
            assert get_scenario(name).name == name

    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultConfigError):
            get_scenario("does-not-exist")

    def test_reseed(self):
        scenario = get_scenario("flaky-msr", seed=99)
        assert scenario.seed == 99
        assert SCENARIOS["flaky-msr"].seed == 0  # original untouched

    def test_bad_rate_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultScenario(msr_read_fail_rate=1.5)

    def test_jitter_needs_bound(self):
        with pytest.raises(FaultConfigError):
            FaultScenario(tick_jitter_rate=0.5)

    def test_bad_window_rejected(self):
        with pytest.raises(FaultConfigError):
            FaultScenario(window_s=(10.0, 10.0))

    def test_window_activity(self):
        scenario = FaultScenario(window_s=(5.0, 10.0))
        assert not scenario.active_at(4.9)
        assert scenario.active_at(5.0)
        assert not scenario.active_at(10.0)

    def test_crash_validation(self):
        with pytest.raises(FaultConfigError):
            AppCrash(time_s=-1.0, app_index=0)


class TestCrashScenario:
    def test_known_scenarios_valid_and_described(self):
        for name, scenario in CRASH_SCENARIOS.items():
            assert get_crash_scenario(name) is scenario
            assert scenario.description  # the faults listing shows it

    def test_unknown_scenario_rejected(self):
        with pytest.raises(FaultConfigError):
            get_crash_scenario("does-not-exist")

    def test_restart_needs_a_node_name(self):
        with pytest.raises(FaultConfigError):
            NodeRestart("", 2, 4)

    def test_restart_epoch_must_follow_crash(self):
        with pytest.raises(FaultConfigError):
            NodeRestart("node0", 4, 4)
        with pytest.raises(FaultConfigError):
            NodeRestart("node0", -1, 4)

    def test_restart_down_window_is_half_open(self):
        restart = NodeRestart("node0", 4, 7)
        assert not restart.down_in(3)
        assert restart.down_in(4)
        assert restart.down_in(6)
        assert not restart.down_in(7)  # the reboot epoch is up

    def test_duplicate_arbiter_crash_epochs_rejected(self):
        with pytest.raises(FaultConfigError, match="duplicate"):
            CrashScenario(name="x", arbiter_crash_epochs=(5, 5))

    def test_overlapping_restart_windows_rejected(self):
        with pytest.raises(FaultConfigError, match="overlapping"):
            CrashScenario(
                name="x",
                node_restarts=(
                    NodeRestart("node0", 2, 6),
                    NodeRestart("node0", 4, 8),
                ),
            )

    def test_back_to_back_restarts_allowed(self):
        # reboot at 4 and crash again at 4: adjacent, not overlapping
        scenario = CrashScenario(
            name="x",
            node_restarts=(
                NodeRestart("node0", 2, 4),
                NodeRestart("node0", 4, 6),
            ),
        )
        assert scenario.node_names() == ("node0",)

    def test_different_nodes_may_overlap(self):
        CrashScenario(
            name="x",
            node_restarts=(
                NodeRestart("node0", 2, 6),
                NodeRestart("node1", 4, 8),
            ),
        )

    def test_companion_transport_validated_early(self):
        with pytest.raises(FaultConfigError):
            CrashScenario(name="x", transport="no-such-links")

    def test_quiet(self):
        assert CRASH_SCENARIOS["none"].quiet
        assert not CRASH_SCENARIOS["node-restart"].quiet
        assert not CRASH_SCENARIOS["arbiter-crash"].quiet


class TestFaultyMSRFile:
    def test_zero_rates_pass_through(self, skylake):
        chip = Chip(skylake)
        chip.run_ticks(50)
        faulty = FaultyMSRFile(chip.msr, get_scenario("none"))
        for cpu in skylake.core_ids():
            assert faulty.read(cpu, msrdef.IA32_APERF) == chip.msr.read(
                cpu, msrdef.IA32_APERF
            )
        assert faulty.stats.total() == 0

    def test_read_failures_injected_and_counted(self, skylake):
        chip = Chip(skylake)
        chip.run_ticks(10)
        scenario = FaultScenario(msr_read_fail_rate=1.0)
        faulty = FaultyMSRFile(chip.msr, scenario)
        with pytest.raises(MSRIOError):
            faulty.read(0, msrdef.IA32_APERF)
        assert faulty.stats.read_failures == 1

    def test_write_failures_do_not_reach_hardware(self, skylake):
        chip = Chip(skylake)
        before = chip.requested_frequency(0)
        scenario = FaultScenario(msr_write_fail_rate=1.0)
        faulty = FaultyMSRFile(chip.msr, scenario)
        with pytest.raises(MSRIOError):
            faulty.write(0, msrdef.IA32_PERF_CTL, 22 << 8)
        assert chip.requested_frequency(0) == before

    def test_stuck_counter_repeats_last_read(self, skylake):
        chip = Chip(skylake)
        faulty = FaultyMSRFile(chip.msr, get_scenario("none"))
        chip.msr.poke(0, msrdef.IA32_APERF, 111)
        assert faulty.read(0, msrdef.IA32_APERF) == 111
        chip.msr.poke(0, msrdef.IA32_APERF, 222)
        stuck = FaultyMSRFile(chip.msr, FaultScenario(stuck_counter_rate=1.0))
        # no prior read through the stuck proxy: falls back to truth
        assert stuck.read(0, msrdef.IA32_APERF) == 222

    def test_deterministic_for_seed(self, skylake):
        def collect(seed):
            chip = Chip(skylake)
            chip.run_ticks(20)
            scenario = FaultScenario(
                msr_read_fail_rate=0.2,
                stuck_counter_rate=0.2,
                garbage_counter_rate=0.2,
                seed=seed,
            )
            faulty = FaultyMSRFile(chip.msr, scenario)
            stream = []
            for _ in range(300):
                try:
                    stream.append(faulty.read(0, msrdef.IA32_APERF))
                except MSRIOError:
                    stream.append("EIO")
            return stream, faulty.stats

        s1, st1 = collect(42)
        s2, st2 = collect(42)
        s3, _ = collect(43)
        assert s1 == s2
        assert st1 == st2
        assert s1 != s3

    def test_window_suppresses_faults(self, skylake):
        chip = Chip(skylake)
        chip.run_ticks(10)
        clock = {"t": 0.0}
        scenario = FaultScenario(
            msr_read_fail_rate=1.0, window_s=(100.0, 200.0)
        )
        faulty = FaultyMSRFile(
            chip.msr, scenario, clock=lambda: clock["t"]
        )
        faulty.read(0, msrdef.IA32_APERF)  # outside window: clean
        clock["t"] = 150.0
        with pytest.raises(MSRIOError):
            faulty.read(0, msrdef.IA32_APERF)

    def test_simulator_side_accessors_never_faulted(self, skylake):
        chip = Chip(skylake)
        scenario = FaultScenario(
            msr_read_fail_rate=1.0, msr_write_fail_rate=1.0
        )
        faulty = FaultyMSRFile(chip.msr, scenario)
        faulty.poke(0, msrdef.IA32_APERF, 12345)  # must not raise
        assert chip.msr.read(0, msrdef.IA32_APERF) == 12345
        faulty.advance_counter(0, msrdef.IA32_APERF, 5)
        assert chip.msr.read(0, msrdef.IA32_APERF) == 12350


class TestTickFaultGate:
    def test_all_drop(self):
        gate = TickFaultGate(FaultScenario(tick_drop_rate=1.0))
        assert gate(1.0) == "drop"
        assert gate.stats.dropped == 1

    def test_all_jitter_bounded(self):
        gate = TickFaultGate(
            FaultScenario(tick_jitter_rate=1.0, tick_max_jitter_s=0.25)
        )
        for _ in range(50):
            delay = gate(1.0)
            assert isinstance(delay, float)
            assert 0.0 <= delay <= 0.25
        assert gate.stats.jittered == 50

    def test_clean_gate_fires(self):
        gate = TickFaultGate(FaultScenario())
        assert gate(1.0) == "fire"
        assert gate.stats.fired == 1

    def test_window_respected(self):
        gate = TickFaultGate(
            FaultScenario(tick_drop_rate=1.0, window_s=(5.0, 6.0))
        )
        assert gate(1.0) == "fire"
        assert gate(5.5) == "drop"
        assert gate(7.0) == "fire"

    def test_deterministic_for_seed(self):
        def run(seed):
            gate = TickFaultGate(
                FaultScenario(
                    tick_drop_rate=0.3,
                    tick_jitter_rate=0.3,
                    tick_max_jitter_s=0.5,
                    seed=seed,
                )
            )
            return [gate(float(i)) for i in range(100)]

        assert run(7) == run(7)
        assert run(7) != run(8)
