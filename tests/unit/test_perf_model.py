"""Tests for closed-form performance helpers."""

import pytest

from repro.errors import ConfigError
from repro.sim.perf_model import (
    effective_frequency_mhz,
    max_standalone_ips,
    standalone_ips,
    standalone_runtime_s,
)
from repro.workloads.spec import spec_app


class TestEffectiveFrequency:
    def test_non_avx_unrestricted(self, skylake):
        app = spec_app("gcc")
        assert effective_frequency_mhz(skylake, app, 3000.0) == 3000.0

    def test_avx_capped(self, skylake):
        app = spec_app("cam4")
        assert (
            effective_frequency_mhz(skylake, app, 3000.0)
            == skylake.avx_max_frequency_mhz
        )

    def test_nonpositive_rejected(self, skylake):
        with pytest.raises(ConfigError):
            effective_frequency_mhz(skylake, spec_app("gcc"), 0.0)


class TestStandalone:
    def test_ips_monotonic_in_frequency(self, skylake):
        app = spec_app("gcc")
        assert standalone_ips(skylake, app, 2200.0) > standalone_ips(
            skylake, app, 800.0
        )

    def test_runtime_inverse_of_ips(self, skylake):
        app = spec_app("leela")
        runtime = standalone_runtime_s(skylake, app, 2200.0)
        assert runtime == pytest.approx(
            app.instructions / standalone_ips(skylake, app, 2200.0)
        )

    def test_runtime_of_service_rejected(self, skylake):
        with pytest.raises(ConfigError):
            standalone_runtime_s(skylake, spec_app("gcc", steady=True), 2200.0)

    def test_max_ips_is_highest(self, skylake):
        app = spec_app("leela")
        assert max_standalone_ips(skylake, app) >= standalone_ips(
            skylake, app, 2200.0
        )

    def test_avx_app_max_ips_uses_cap(self, skylake):
        app = spec_app("cam4")
        assert max_standalone_ips(skylake, app) == standalone_ips(
            skylake, app, skylake.avx_max_frequency_mhz
        )

    def test_performance_dynamic_range(self, skylake):
        """Paper section 5.2: performance varies by roughly 4x over the
        DVFS range for frequency-sensitive apps."""
        app = spec_app("exchange2")  # most frequency sensitive
        ratio = max_standalone_ips(skylake, app) / standalone_ips(
            skylake, app, skylake.min_frequency_mhz
        )
        assert 3.0 <= ratio <= 5.0

    def test_simulation_matches_closed_form(self, skylake):
        """The tick simulation and the closed form agree — the analytic
        baselines the experiments normalize with are trustworthy."""
        from repro.sim.chip import Chip
        from repro.sim.core import BatchCoreLoad
        from repro.workloads.app import RunningApp

        app = spec_app("deepsjeng", steady=True)
        chip = Chip(skylake)
        chip.assign_load(0, BatchCoreLoad(RunningApp(app), 2200.0))
        chip.set_requested_frequency(0, 1600.0)
        chip.run_ticks(2000)
        measured = chip.cores[0].total_instructions / chip.time_s
        expected = standalone_ips(skylake, app, 1600.0)
        assert measured == pytest.approx(expected, rel=0.05)
