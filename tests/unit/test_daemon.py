"""Tests for the power daemon plumbing (short simulated runs)."""

import pytest

from repro.config import AppSpec, ExperimentConfig, build_stack
from repro.core.daemon import PowerDaemon
from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.rapl_baseline import RaplBaselinePolicy
from repro.core.types import ManagedApp, Priority
from repro.errors import ConfigError, UnsupportedFeatureError
from repro.sched.pinning import pin_apps
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine
from repro.workloads.spec import spec_app


def simple_stack(platform, policy_cls=FrequencySharesPolicy, limit=50.0,
                 shares=(90.0, 10.0)):
    chip = Chip(platform, tick_s=5e-3)
    engine = SimEngine(chip)
    placements = pin_apps(
        chip, [spec_app("leela", steady=True), spec_app("cactusBSSN",
                                                        steady=True)]
    )
    managed = [
        ManagedApp(label=p.label, core_id=p.core_id, shares=s)
        for p, s in zip(placements, shares)
    ]
    policy = policy_cls(platform, managed, limit)
    daemon = PowerDaemon(chip, policy)
    return chip, engine, daemon


class TestLifecycle:
    def test_start_applies_initial_distribution(self, skylake):
        chip, engine, daemon = simple_stack(skylake)
        daemon.start()
        assert chip.requested_frequency(0) == 3000.0  # top share at max

    def test_double_start_rejected(self, skylake):
        _, _, daemon = simple_stack(skylake)
        daemon.start()
        with pytest.raises(ConfigError):
            daemon.start()

    def test_attach_starts_automatically(self, skylake):
        chip, engine, daemon = simple_stack(skylake)
        daemon.attach(engine)
        engine.run(3.0)
        assert len(daemon.history) == 3

    def test_bad_interval_rejected(self, skylake):
        chip, _, _ = simple_stack(skylake)
        policy = RaplBaselinePolicy(
            skylake, [ManagedApp(label="x", core_id=5)], 50.0
        )
        with pytest.raises(ConfigError):
            PowerDaemon(chip, policy, interval_s=0.0)

    def test_platform_mismatch_rejected(self, skylake, ryzen):
        chip = Chip(skylake)
        policy = FrequencySharesPolicy(
            ryzen, [ManagedApp(label="x", core_id=0)], 50.0
        )
        with pytest.raises(ConfigError):
            PowerDaemon(chip, policy)


class TestIterationRecords:
    def test_history_contents(self, skylake):
        chip, engine, daemon = simple_stack(skylake)
        daemon.attach(engine)
        engine.run(5.0)
        record = daemon.history[-1]
        assert record.package_power_w > 0
        assert set(record.app_frequency_mhz) == {"leela#0", "cactusBSSN#0"}
        assert record.targets_mhz["leela#0"] > 0

    def test_power_tracks_binding_limit(self, skylake):
        # two apps flat out draw ~28 W, so a 24 W limit binds
        chip, engine, daemon = simple_stack(skylake, limit=24.0)
        daemon.attach(engine)
        engine.run(30.0)
        tail = [s.package_power_w for s in daemon.history[-10:]]
        assert sum(tail) / len(tail) == pytest.approx(24.0, abs=2.0)

    def test_slack_limit_runs_apps_at_max(self, skylake):
        chip, engine, daemon = simple_stack(skylake, limit=45.0)
        daemon.attach(engine)
        engine.run(20.0)
        record = daemon.history[-1]
        assert record.package_power_w < 45.0
        assert record.app_frequency_mhz["leela#0"] == 3000.0

    def test_skylake_core_power_is_none(self, skylake):
        chip, engine, daemon = simple_stack(skylake)
        daemon.attach(engine)
        engine.run(2.0)
        assert daemon.history[-1].app_power_w["leela#0"] is None

    def test_parking_applied_to_chip(self, skylake):
        chip = Chip(skylake, tick_s=5e-3)
        engine = SimEngine(chip)
        placements = pin_apps(
            chip,
            [spec_app("cactusBSSN", steady=True)] * 5
            + [spec_app("leela", steady=True)] * 5,
        )
        managed = [
            ManagedApp(
                label=p.label,
                core_id=p.core_id,
                priority=Priority.HIGH if i < 5 else Priority.LOW,
            )
            for i, p in enumerate(placements)
        ]
        from repro.core.priority import PriorityPolicy

        policy = PriorityPolicy(skylake, managed, 40.0)
        daemon = PowerDaemon(chip, policy)
        daemon.attach(engine)
        engine.run(2.0)
        # LP cores parked during HP convergence
        assert any(chip.cores[p.core_id].parked for p in placements[5:])


class TestHardwareLimitProgramming:
    def test_rapl_policy_programs_limit(self, skylake):
        chip, engine, daemon = simple_stack(
            skylake, policy_cls=RaplBaselinePolicy, limit=50.0
        )
        daemon.start()
        assert chip.rapl.limit_w == 50.0

    def test_software_policy_backstops_at_tdp(self, skylake):
        chip, engine, daemon = simple_stack(skylake, limit=40.0)
        daemon.start()
        assert chip.rapl.limit_w == skylake.power.tdp_watts

    def test_rapl_policy_on_ryzen_rejected(self, ryzen):
        with pytest.raises(UnsupportedFeatureError):
            RaplBaselinePolicy(
                ryzen, [ManagedApp(label="x", core_id=0)], 50.0
            )


class TestRyzenLevelReduction:
    def test_daemon_never_violates_pstate_budget(self, ryzen):
        """Eight distinct share levels on Ryzen must be reduced to 3
        simultaneous P-states before programming — otherwise the chip
        raises PlatformError."""
        chip = Chip(ryzen, tick_s=5e-3)
        engine = SimEngine(chip)
        placements = pin_apps(
            chip, [spec_app("leela", steady=True)] * 8
        )
        managed = [
            ManagedApp(label=p.label, core_id=p.core_id,
                       shares=10.0 * (i + 1))
            for i, p in enumerate(placements)
        ]
        policy = FrequencySharesPolicy(ryzen, managed, 45.0)
        daemon = PowerDaemon(chip, policy)
        daemon.attach(engine)
        engine.run(20.0)  # would raise on violation
        requested = {
            chip.requested_frequency(p.core_id) for p in placements
        }
        assert len(requested) <= 3
