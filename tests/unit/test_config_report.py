"""Tests for the experiment config builder, report rendering, and tables."""

import pytest

from repro.config import AppSpec, ExperimentConfig, POLICY_REGISTRY, build_stack
from repro.core.types import Priority
from repro.errors import ConfigError
from repro.experiments.report import render_kv, render_table
from repro.experiments.tables import table1_features, table2_rows, table3_rows


class TestExperimentConfig:
    def test_valid_config(self):
        config = ExperimentConfig(
            platform="skylake", policy="rapl", limit_w=50.0,
            apps=(AppSpec("gcc"),),
        )
        assert config.policy == "rapl"

    def test_unknown_policy_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(
                platform="skylake", policy="magic", limit_w=50.0,
                apps=(AppSpec("gcc"),),
            )

    def test_empty_apps_rejected(self):
        with pytest.raises(ConfigError):
            ExperimentConfig(
                platform="skylake", policy="rapl", limit_w=50.0, apps=(),
            )

    def test_registry_has_all_paper_policies(self):
        assert set(POLICY_REGISTRY) >= {
            "priority", "frequency-shares", "performance-shares",
            "power-shares", "rapl",
        }
        # plus the CPPC/HWP-hints variant the paper discusses (2.1, 5.2)
        assert "hwp-hints" in POLICY_REGISTRY


class TestBuildStack:
    def test_builds_and_runs(self):
        config = ExperimentConfig(
            platform="skylake", policy="frequency-shares", limit_w=50.0,
            apps=(AppSpec("leela", shares=2), AppSpec("gcc", shares=1)),
            tick_s=5e-3,
        )
        stack = build_stack(config)
        stack.engine.run(3.0)
        assert len(stack.daemon.history) == 3
        assert stack.labels == ["leela#0", "gcc#0"]

    def test_too_many_apps_rejected(self):
        config = ExperimentConfig(
            platform="ryzen", policy="rapl", limit_w=50.0,
            apps=tuple(AppSpec("gcc") for _ in range(9)),
        )
        with pytest.raises(ConfigError):
            build_stack(config)

    def test_avx_app_gets_capped_max(self):
        config = ExperimentConfig(
            platform="skylake", policy="frequency-shares", limit_w=50.0,
            apps=(AppSpec("cam4"), AppSpec("gcc")), tick_s=5e-3,
        )
        stack = build_stack(config)
        cam4 = next(
            a for a in stack.daemon.policy.apps if a.label == "cam4#0"
        )
        assert cam4.max_frequency_mhz == 1700.0

    def test_priority_spec_respected(self):
        config = ExperimentConfig(
            platform="skylake", policy="priority", limit_w=50.0,
            apps=(
                AppSpec("cactusBSSN", priority=Priority.HIGH),
                AppSpec("leela", priority=Priority.LOW),
            ),
            tick_s=5e-3,
        )
        stack = build_stack(config)
        assert len(stack.daemon.policy.lp_apps) == 1


class TestReport:
    def test_render_table_basic(self):
        text = render_table(
            [{"a": 1, "b": 2.5}, {"a": 10, "b": None}], title="T"
        )
        lines = text.splitlines()
        assert lines[0] == "T"
        assert "a" in lines[1] and "b" in lines[1]
        assert "-" in lines[-1]  # None renders as dash

    def test_render_table_column_selection(self):
        text = render_table([{"a": 1, "b": 2}], columns=["b"])
        assert "a" not in text.splitlines()[0]

    def test_render_table_empty_rejected(self):
        with pytest.raises(ConfigError):
            render_table([])

    def test_render_bool(self):
        text = render_table([{"x": True}, {"x": False}])
        assert "yes" in text and "no" in text

    def test_render_kv(self):
        text = render_kv({"cores": 10, "vendor": "intel"})
        assert "cores" in text and "10" in text

    def test_render_kv_empty_rejected(self):
        with pytest.raises(ConfigError):
            render_kv({})


class TestTables:
    def test_table1_skylake(self):
        row = table1_features("skylake")
        assert row["cores"] == 10
        assert row["rapl_capping"] == "20-85 W"
        assert row["per_core_power_telemetry"] is False

    def test_table1_ryzen(self):
        row = table1_features("ryzen")
        assert row["simultaneous_pstates"] == 3
        assert row["per_core_power_telemetry"] is True

    def test_table2_row_sums(self):
        """Each Table 2 mix fills all ten Skylake cores."""
        for row in table2_rows():
            total = sum(v for k, v in row.items() if k != "mix")
            assert total == 10

    def test_table2_mix_names_match_counts(self):
        for row in table2_rows():
            hp = row["cactusBSSN-HP"] + row["leela-HP"]
            assert row["mix"].startswith(f"{hp}H")

    def test_table3_sets(self):
        rows = table3_rows()
        assert len(rows) == 2
        assert rows[0]["app2"] == "cactusBSSN"
        assert rows[1]["app3"] == "cam4"
