"""Tests for random workload mixes and the Table 3 sets."""

import pytest

from repro.errors import ConfigError
from repro.workloads.generator import (
    RandomMixGenerator,
    TABLE3_SETS,
    table3_set,
)


class TestTable3:
    def test_set_a_matches_paper(self):
        assert TABLE3_SETS["A"] == (
            "deepsjeng", "perlbench", "cactusBSSN", "exchange2", "gcc",
        )

    def test_set_b_matches_paper(self):
        assert TABLE3_SETS["B"] == (
            "deepsjeng", "omnetpp", "perlbench", "cam4", "lbm",
        )

    def test_set_lookup_case_insensitive(self):
        names = [a.name for a in table3_set("a")]
        assert names[0] == "deepsjeng"

    def test_set_b_has_avx_saturators(self):
        """Fig 11: B3 (cam4) and B4 (lbm) saturate due to AVX."""
        apps = table3_set("B")
        assert apps[3].uses_avx and apps[4].uses_avx

    def test_unknown_set_rejected(self):
        with pytest.raises(ConfigError):
            table3_set("C")

    def test_steady_flag(self):
        assert all(a.instructions is None for a in table3_set("A"))
        assert all(
            a.instructions is not None for a in table3_set("A", steady=False)
        )


class TestGenerator:
    def test_sample_sizes(self):
        gen = RandomMixGenerator(seed=3)
        assert len(gen.sample(5)) == 5
        assert len(gen.sample(3, copies=2)) == 6

    def test_sample_distinct_benchmarks(self):
        gen = RandomMixGenerator(seed=3)
        names = [a.name for a in gen.sample(11)]
        assert len(set(names)) == 11

    def test_copies_adjacent(self):
        gen = RandomMixGenerator(seed=3)
        mix = gen.sample(2, copies=2)
        assert mix[0].name == mix[1].name
        assert mix[2].name == mix[3].name

    def test_deterministic_by_seed(self):
        a = RandomMixGenerator(seed=5).sample_names(4)
        b = RandomMixGenerator(seed=5).sample_names(4)
        assert a == b

    def test_different_seeds_differ(self):
        draws = {
            tuple(RandomMixGenerator(seed=s).sample_names(5))
            for s in range(8)
        }
        assert len(draws) > 1

    def test_k_bounds(self):
        gen = RandomMixGenerator()
        with pytest.raises(ConfigError):
            gen.sample(0)
        with pytest.raises(ConfigError):
            gen.sample(12)

    def test_copies_positive(self):
        with pytest.raises(ConfigError):
            RandomMixGenerator().sample(2, copies=0)
