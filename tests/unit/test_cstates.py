"""Tests for the C-state (core idle) model."""

import pytest

from repro.errors import PlatformError
from repro.hw.cstates import CState, CStateModel, EXIT_LATENCY_S


class TestResidency:
    def test_busy_core_in_c0(self):
        model = CStateModel(2)
        model.observe(0, 1e-3, 1.0, parked=False)
        assert model.state(0) is CState.C0
        assert model.residency(0, CState.C0) == pytest.approx(1e-3)

    def test_partial_busy_splits_c0_c1(self):
        model = CStateModel(1)
        model.observe(0, 1.0, 0.25, parked=False)
        assert model.residency(0, CState.C0) == pytest.approx(0.25)
        assert model.residency(0, CState.C1) == pytest.approx(0.75)

    def test_idle_core_in_c1(self):
        model = CStateModel(1)
        model.observe(0, 1e-3, 0.0, parked=False)
        assert model.state(0) is CState.C1

    def test_parked_core_in_c6(self):
        model = CStateModel(1)
        model.observe(0, 1e-3, 0.0, parked=True)
        assert model.state(0) is CState.C6
        assert model.residency(0, CState.C6) == pytest.approx(1e-3)

    def test_residency_fraction(self):
        model = CStateModel(1)
        model.observe(0, 1.0, 0.0, parked=True)
        model.observe(0, 1.0, 1.0, parked=False)
        assert model.residency_fraction(0, CState.C6) == pytest.approx(0.5)

    def test_fresh_core_reports_c0_fraction_one(self):
        model = CStateModel(1)
        assert model.residency_fraction(0, CState.C0) == 1.0

    def test_per_core_independence(self):
        model = CStateModel(2)
        model.observe(0, 1.0, 1.0, parked=False)
        model.observe(1, 1.0, 0.0, parked=True)
        assert model.residency(1, CState.C0) == 0.0
        assert model.residency(0, CState.C6) == 0.0


class TestTransitions:
    def test_transition_count(self):
        model = CStateModel(1)
        model.observe(0, 1e-3, 1.0, parked=False)  # stays C0 (initial)
        model.observe(0, 1e-3, 0.0, parked=True)   # -> C6
        model.observe(0, 1e-3, 1.0, parked=False)  # -> C0
        assert model.transitions(0) == 2

    def test_wakeup_from_c6_costs_efficiency(self):
        model = CStateModel(1)
        model.observe(0, 1e-3, 0.0, parked=True)
        efficiency = model.observe(0, 1e-3, 1.0, parked=False)
        expected = 1.0 - EXIT_LATENCY_S[CState.C6] / 1e-3
        assert efficiency == pytest.approx(expected)

    def test_no_wakeup_cost_from_c0(self):
        model = CStateModel(1)
        model.observe(0, 1e-3, 1.0, parked=False)
        assert model.observe(0, 1e-3, 1.0, parked=False) == 1.0

    def test_exit_latencies_ordered(self):
        assert (
            EXIT_LATENCY_S[CState.C0]
            < EXIT_LATENCY_S[CState.C1]
            < EXIT_LATENCY_S[CState.C6]
        )

    def test_idle_states_flagged(self):
        assert not CState.C0.is_idle
        assert CState.C1.is_idle
        assert CState.C6.is_idle

    def test_zero_cores_rejected(self):
        with pytest.raises(PlatformError):
            CStateModel(0)
