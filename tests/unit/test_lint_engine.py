"""Engine-level tests: suppressions, the baseline ledger, CLI codes."""

from __future__ import annotations

import io
import json

import pytest

from repro.analysis import Baseline, SourceFile, lint_paths, lint_sources
from repro.analysis.baseline import BaselineEntry
from repro.analysis.cli import run_lint
from repro.analysis.engine import (
    META_MALFORMED,
    META_PARSE,
    META_UNKNOWN,
    META_UNUSED,
)

VIOLATION = "import random\n\n\ndef f():\n    return random.random()\n"
CLEAN = "def f(a, b):\n    return a + b\n"


def lint_text(text, path="src/repro/hw/snippet.py", **kwargs):
    return lint_sources([SourceFile.from_text(path, text)], **kwargs)


class TestSuppressions:
    def test_same_line_comment_suppresses(self):
        report = lint_text(
            "import random\n\n\ndef f():\n"
            "    # repro-lint: disable=rng-provenance — test sentinel\n"
            "    return random.random()\n"
        )
        assert report.ok
        assert len(report.suppressed) == 1
        assert report.suppressed[0].suppress_reason == "test sentinel"

    def test_comment_above_suppresses_next_line_only(self):
        report = lint_text(
            "import random\n"
            "# repro-lint: disable=rng-provenance — covers line 2 only\n"
            "a = random.random()\n"
            "b = random.random()\n"
        )
        assert not report.ok
        assert len(report.suppressed) == 1
        assert len(report.blocking) == 1
        assert report.blocking[0].line == 4

    def test_reasonless_disable_is_a_finding_and_does_not_suppress(self):
        report = lint_text(
            "import random\n\n\ndef f():\n"
            "    return random.random()  # repro-lint: disable=rng-provenance\n"
        )
        rules = {f.rule for f in report.blocking}
        assert META_MALFORMED in rules
        assert "rng-provenance" in rules  # the violation still blocks

    def test_unknown_rule_disable_is_a_finding(self):
        report = lint_text(
            "# repro-lint: disable=no-such-rule — typo\n"
            "x = 1\n"
        )
        assert [f.rule for f in report.blocking] == [META_UNKNOWN]

    def test_stale_suppression_is_a_finding(self):
        report = lint_text(
            "# repro-lint: disable=rng-provenance — nothing to cover\n"
            "x = 1\n"
        )
        assert [f.rule for f in report.blocking] == [META_UNUSED]

    def test_comma_list_suppresses_two_rules_on_one_line(self):
        report = lint_text(
            "import random\n\n\ndef f():\n"
            "    # repro-lint: disable=rng-provenance,float-equality"
            " — test sentinel\n"
            "    return random.random() == 1.0\n"
        )
        assert report.ok
        assert sorted(f.rule for f in report.suppressed) == [
            "float-equality", "rng-provenance",
        ]

    def test_empty_reason_after_dash_is_malformed(self):
        report = lint_text(
            "import random\n\n\ndef f():\n"
            "    # repro-lint: disable=rng-provenance —\n"
            "    return random.random()\n"
        )
        rules = {f.rule for f in report.blocking}
        assert META_MALFORMED in rules
        assert "rng-provenance" in rules

    def test_comment_above_covers_multiline_statement_head(self):
        report = lint_text(
            "import random\n\n\ndef f():\n"
            "    # repro-lint: disable=rng-provenance — test sentinel\n"
            "    return random.random(\n"
            "    )\n"
        )
        assert report.ok
        assert len(report.suppressed) == 1

    def test_trailing_comment_on_continuation_line_covers_nothing(self):
        # the disable must sit on the statement's first physical line
        # (or the line above); a closing-paren line covers nothing
        report = lint_text(
            "import random\n\n\ndef f():\n"
            "    return random.random(\n"
            "    )  # repro-lint: disable=rng-provenance — wrong line\n"
        )
        assert not report.ok
        rules = sorted(f.rule for f in report.blocking)
        assert rules == ["rng-provenance", META_UNUSED]

    def test_suppression_covers_only_named_rule(self):
        report = lint_text(
            "import random\n\n\ndef f():\n"
            "    # repro-lint: disable=float-equality — wrong rule\n"
            "    return random.random()\n"
        )
        # the rng-provenance finding still blocks; the disable is stale
        rules = sorted(f.rule for f in report.blocking)
        assert rules == ["rng-provenance", META_UNUSED]


class TestBaseline:
    def suppressed_report(self):
        return lint_text(
            "import random\n\n\ndef f():\n"
            "    # repro-lint: disable=rng-provenance — test sentinel\n"
            "    return random.random()\n"
        )

    def test_roundtrip_through_disk(self, tmp_path):
        ledger = Baseline.from_findings(self.suppressed_report().suppressed)
        path = tmp_path / "baseline.json"
        ledger.save(path)
        loaded = Baseline.load(path)
        assert loaded.entries == ledger.entries
        assert loaded.entries[0].reason == "test sentinel"

    def test_missing_file_is_empty_baseline(self, tmp_path):
        assert Baseline.load(tmp_path / "nope.json").entries == ()

    def test_malformed_file_raises(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text(json.dumps(["not", "a", "ledger"]))
        with pytest.raises(ValueError):
            Baseline.load(path)

    def test_check_mode_blocks_unledgered_suppression(self):
        report = lint_text(
            "import random\n\n\ndef f():\n"
            "    # repro-lint: disable=rng-provenance — not in ledger\n"
            "    return random.random()\n",
            baseline=Baseline(),
            check=True,
        )
        assert not report.ok
        assert report.unledgered

    def test_check_mode_passes_with_matching_entry(self):
        first = self.suppressed_report()
        ledger = Baseline.from_findings(first.suppressed)
        report = lint_text(
            "import random\n\n\ndef f():\n"
            "    # repro-lint: disable=rng-provenance — test sentinel\n"
            "    return random.random()\n",
            baseline=ledger,
            check=True,
        )
        assert report.ok

    def test_matching_survives_line_churn(self):
        ledger = Baseline.from_findings(self.suppressed_report().suppressed)
        # same code pushed three lines down by new material above
        report = lint_text(
            "import random\n\nPADDING_A = 1\nPADDING_B = 2\n\n\ndef f():\n"
            "    # repro-lint: disable=rng-provenance — test sentinel\n"
            "    return random.random()\n",
            baseline=ledger,
            check=True,
        )
        assert report.ok

    def test_multiplicity_one_entry_tolerates_one_finding(self):
        ledger = Baseline.from_findings(self.suppressed_report().suppressed)
        report = lint_text(
            "import random\n\n\ndef f():\n"
            "    # repro-lint: disable=rng-provenance — test sentinel\n"
            "    return random.random()\n"
            "\n\ndef g():\n"
            "    # repro-lint: disable=rng-provenance — test sentinel\n"
            "    return random.random()\n",
            baseline=ledger,
            check=True,
        )
        assert not report.ok
        assert len(report.unledgered) == 1

    def test_unsuppressed_finding_matched_by_ledger_is_baselined(self):
        ledger = Baseline((BaselineEntry(
            rule="rng-provenance",
            path="src/repro/hw/snippet.py",
            context="return random.random()",
        ),))
        report = lint_text(VIOLATION, baseline=ledger)
        assert report.ok
        assert len(report.baselined) == 1


class TestLintPaths:
    def test_syntax_error_is_a_blocking_finding(self, tmp_path):
        bad = tmp_path / "bad.py"
        bad.write_text("def broken(:\n")
        report = lint_paths([bad], root=tmp_path)
        assert not report.ok
        assert report.blocking[0].rule == META_PARSE

    def test_directory_walk_skips_hidden_dirs(self, tmp_path):
        (tmp_path / ".hidden").mkdir()
        (tmp_path / ".hidden" / "x.py").write_text(VIOLATION)
        (tmp_path / "ok.py").write_text(CLEAN)
        report = lint_paths([tmp_path], root=tmp_path)
        assert report.ok
        assert report.files_checked == 1


class TestCli:
    def write_tree(self, tmp_path, text):
        src = tmp_path / "src"
        src.mkdir()
        (src / "snippet.py").write_text(text)
        return tmp_path

    def test_clean_tree_exits_zero(self, tmp_path):
        root = self.write_tree(tmp_path, CLEAN)
        assert run_lint(
            [str(root / "src"), "--root", str(root)], stream=io.StringIO()
        ) == 0

    def test_violation_exits_one_and_renders_location(self, tmp_path):
        root = self.write_tree(tmp_path, VIOLATION)
        out = io.StringIO()
        rc = run_lint([str(root / "src"), "--root", str(root)], stream=out)
        assert rc == 1
        rendered = out.getvalue()
        assert "src/snippet.py:5" in rendered
        assert "rng-provenance" in rendered
        assert "DESIGN.md §15" in rendered

    def test_json_output(self, tmp_path):
        root = self.write_tree(tmp_path, VIOLATION)
        out = io.StringIO()
        run_lint(
            [str(root / "src"), "--root", str(root), "--json"], stream=out
        )
        payload = json.loads(out.getvalue())
        assert payload["blocking"][0]["rule"] == "rng-provenance"

    def test_write_baseline_then_check_passes(self, tmp_path):
        root = self.write_tree(
            tmp_path,
            "import random\n\n\ndef f():\n"
            "    # repro-lint: disable=rng-provenance — deliberate\n"
            "    return random.random()\n",
        )
        args = [str(root / "src"), "--root", str(root)]
        # unledgered suppression fails --check...
        assert run_lint(args + ["--check"], stream=io.StringIO()) == 1
        # ...until the ledger is written, after which check is clean
        assert run_lint(
            args + ["--write-baseline"], stream=io.StringIO()
        ) == 0
        assert (root / ".repro-lint-baseline.json").exists()
        assert run_lint(args + ["--check"], stream=io.StringIO()) == 0

    def test_explain_prints_contract(self):
        out = io.StringIO()
        assert run_lint(["--explain", "cache-purity"], stream=out) == 0
        text = out.getvalue()
        assert "DESIGN.md §10.6" in text
        assert "pure function" in text

    def test_explain_unknown_rule_exits_two(self):
        assert run_lint(
            ["--explain", "nope"], stream=io.StringIO()
        ) == 2

    def test_missing_path_exits_two(self, tmp_path):
        assert run_lint(
            [str(tmp_path / "absent"), "--root", str(tmp_path)],
            stream=io.StringIO(),
        ) == 2
