"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_apps, main
from repro.core.types import Priority


class TestParseApps:
    def test_simple(self):
        apps = _parse_apps("gcc")
        assert apps[0].benchmark == "gcc"
        assert apps[0].shares == 1.0

    def test_with_shares(self):
        apps = _parse_apps("leela:90,cactusBSSN:10")
        assert apps[0].shares == 90.0
        assert apps[1].shares == 10.0

    def test_with_priority(self):
        apps = _parse_apps("gcc:1:low,leela:1:high")
        assert apps[0].priority is Priority.LOW
        assert apps[1].priority is Priority.HIGH

    def test_whitespace_tolerated(self):
        apps = _parse_apps("gcc:2, leela:1")
        assert apps[1].benchmark == "leela"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "run" in out

    def test_table1(self, capsys):
        assert main(["table1", "--platform", "skylake"]) == 0
        assert "skylake" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "10H0L" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "deepsjeng" in capsys.readouterr().out

    def test_run_command(self, capsys):
        code = main([
            "run", "--platform", "skylake", "--policy", "frequency-shares",
            "--limit", "50", "--apps", "leela:9,gcc:1",
            "--duration", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "leela#0" in out and "pkg" in out

    def test_run_bad_policy_fails_cleanly(self, capsys):
        code = main([
            "run", "--platform", "ryzen", "--policy", "rapl",
            "--limit", "50", "--apps", "gcc", "--duration", "6",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        code = main([
            "run", "--apps", "doom", "--duration", "6",
        ])
        assert code == 1
