"""Tests for the command-line interface."""

import pytest

from repro.cli import _parse_apps, main
from repro.core.types import Priority


class TestParseApps:
    def test_simple(self):
        apps = _parse_apps("gcc")
        assert apps[0].benchmark == "gcc"
        assert apps[0].shares == 1.0

    def test_with_shares(self):
        apps = _parse_apps("leela:90,cactusBSSN:10")
        assert apps[0].shares == 90.0
        assert apps[1].shares == 10.0

    def test_with_priority(self):
        apps = _parse_apps("gcc:1:low,leela:1:high")
        assert apps[0].priority is Priority.LOW
        assert apps[1].priority is Priority.HIGH

    def test_whitespace_tolerated(self):
        apps = _parse_apps("gcc:2, leela:1")
        assert apps[1].benchmark == "leela"


class TestCommands:
    def test_list(self, capsys):
        assert main(["list"]) == 0
        out = capsys.readouterr().out
        assert "fig7" in out and "run" in out

    def test_table1(self, capsys):
        assert main(["table1", "--platform", "skylake"]) == 0
        assert "skylake" in capsys.readouterr().out

    def test_table2(self, capsys):
        assert main(["table2"]) == 0
        assert "10H0L" in capsys.readouterr().out

    def test_table3(self, capsys):
        assert main(["table3"]) == 0
        assert "deepsjeng" in capsys.readouterr().out

    def test_run_command(self, capsys):
        code = main([
            "run", "--platform", "skylake", "--policy", "frequency-shares",
            "--limit", "50", "--apps", "leela:9,gcc:1",
            "--duration", "10",
        ])
        assert code == 0
        out = capsys.readouterr().out
        assert "leela#0" in out and "pkg" in out

    def test_run_bad_policy_fails_cleanly(self, capsys):
        code = main([
            "run", "--platform", "ryzen", "--policy", "rapl",
            "--limit", "50", "--apps", "gcc", "--duration", "6",
        ])
        assert code == 1
        assert "error" in capsys.readouterr().err

    def test_unknown_benchmark_fails_cleanly(self, capsys):
        code = main([
            "run", "--apps", "doom", "--duration", "6",
        ])
        assert code == 1

    def test_faults_lists_crash_scenarios(self, capsys):
        from repro.faults import CRASH_SCENARIOS, TRANSPORT_SCENARIOS

        assert main(["faults"]) == 0
        out = capsys.readouterr().out
        assert "transport scenarios (cluster --transport-faults):" in out
        crash_section = out.split(
            "crash scenarios (cluster --crash-faults):"
        )[1].split(
            "telemetry scenarios (cluster --telemetry-faults):"
        )[0]
        names = [
            line.split()[0]
            for line in crash_section.strip().splitlines()
        ]
        assert names == sorted(CRASH_SCENARIOS)  # deterministic order
        for scenario in CRASH_SCENARIOS.values():
            assert scenario.description in crash_section
        # transport names stay in their own section
        assert "node0-partition" not in crash_section
        assert "node0-partition" in TRANSPORT_SCENARIOS

    def test_list_includes_sweep(self, capsys):
        assert main(["list"]) == 0
        assert "sweep" in capsys.readouterr().out

    def test_sweep_quick(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        code = main(["sweep", "--seeds", "1", "--quick"])
        assert code == 0
        out = capsys.readouterr().out
        assert "Random sweep" in out
        assert "1 stored" in out
        # second invocation is served from the cache
        assert main(["sweep", "--seeds", "1", "--quick"]) == 0
        assert "1 hit" in capsys.readouterr().out

    def test_sweep_no_cache(self, capsys, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path))
        code = main(["sweep", "--seeds", "1", "--quick", "--no-cache"])
        assert code == 0
        assert "cache" not in capsys.readouterr().out
        assert not list(tmp_path.rglob("*.json"))

    def test_report_accepts_jobs_and_no_cache(self):
        # parse-only: a full report is minutes of work
        from repro.cli import build_parser

        args = build_parser().parse_args(
            ["report", "--quick", "--jobs", "4", "--no-cache"]
        )
        assert args.jobs == 4
        assert args.no_cache is True
