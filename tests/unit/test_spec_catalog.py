"""Tests for the SPEC CPU2017-like benchmark catalog."""

import pytest

from repro.errors import ConfigError
from repro.workloads.spec import (
    NOMINAL_RUNTIME_S,
    SPEC_BENCHMARKS,
    high_demand_names,
    low_demand_names,
    spec_app,
    spec_names,
)


class TestCatalog:
    def test_eleven_benchmarks(self):
        """The paper's recommended SPEC CPU2017 subset has 11 entries."""
        assert len(SPEC_BENCHMARKS) == 11

    def test_expected_names_present(self):
        expected = {
            "lbm", "cactusBSSN", "povray", "imagick", "cam4", "gcc",
            "exchange2", "deepsjeng", "leela", "perlbench", "omnetpp",
        }
        assert set(spec_names()) == expected

    def test_avx_apps(self):
        """lbm, imagick and cam4 are the AVX power outliers (Fig 2)."""
        avx = {name for name, app in SPEC_BENCHMARKS.items() if app.uses_avx}
        assert avx == {"lbm", "imagick", "cam4"}

    def test_demand_partition(self):
        assert set(high_demand_names()) | set(low_demand_names()) == set(
            spec_names()
        )
        assert not set(high_demand_names()) & set(low_demand_names())

    def test_hd_apps_draw_more(self):
        hd_min = min(SPEC_BENCHMARKS[n].c_eff for n in high_demand_names())
        ld_max = max(SPEC_BENCHMARKS[n].c_eff for n in low_demand_names())
        assert hd_min > ld_max

    def test_headline_pairs(self):
        """cactusBSSN is HD and leela LD (section 6); cam4 HD, gcc LD
        (Fig 1)."""
        assert "cactusBSSN" in high_demand_names()
        assert "leela" in low_demand_names()
        assert "cam4" in high_demand_names()
        assert "gcc" in low_demand_names()

    def test_exchange2_most_frequency_sensitive(self):
        """Fig 11: exchange2 has the highest frequency sensitivity."""
        assert SPEC_BENCHMARKS["exchange2"].mem_fraction == min(
            app.mem_fraction for app in SPEC_BENCHMARKS.values()
        )

    def test_perlbench_less_sensitive_than_exchange(self):
        assert (
            SPEC_BENCHMARKS["perlbench"].mem_fraction
            > SPEC_BENCHMARKS["exchange2"].mem_fraction
        )

    def test_memory_bound_entries(self):
        assert SPEC_BENCHMARKS["lbm"].mem_fraction > 0.35
        assert SPEC_BENCHMARKS["omnetpp"].mem_fraction > 0.35


class TestLookup:
    def test_lookup_canonical(self):
        assert spec_app("leela").name == "leela"

    def test_paper_aliases(self):
        assert spec_app("cpugcc").name == "gcc"
        assert spec_app("exchange").name == "exchange2"
        assert spec_app("omentpp").name == "omnetpp"
        assert spec_app("cactuBSSN").name == "cactusBSSN"

    def test_unknown_rejected(self):
        with pytest.raises(ConfigError):
            spec_app("doom")

    def test_steady_variant_is_service(self):
        assert spec_app("gcc", steady=True).instructions is None
        assert spec_app("gcc").instructions is not None

    def test_sized_for_nominal_runtime(self):
        """Instruction budgets give ~NOMINAL_RUNTIME_S at 3 GHz."""
        app = spec_app("leela")
        runtime = app.instructions / app.ips(3000.0, 3000.0)
        assert runtime == pytest.approx(NOMINAL_RUNTIME_S, rel=0.01)

    def test_lookup_returns_same_model(self):
        assert spec_app("gcc") is spec_app("gcc")
