"""Tests for the optional thermal model."""

import pytest

from repro.errors import ConfigError
from repro.sim.thermal import ThermalConfig, ThermalModel


class TestConfig:
    def test_defaults_valid(self):
        assert ThermalConfig().ambient_c < ThermalConfig().t_throttle_c

    def test_bad_tau_rejected(self):
        with pytest.raises(ConfigError):
            ThermalConfig(tau_s=0)

    def test_bad_ordering_rejected(self):
        with pytest.raises(ConfigError):
            ThermalConfig(ambient_c=90.0, t_throttle_c=85.0)


class TestDynamics:
    def test_starts_at_ambient(self):
        model = ThermalModel()
        assert model.temperature_c == model.config.ambient_c

    def test_heats_under_power(self):
        model = ThermalModel()
        for _ in range(1000):
            model.step(60.0, 0.01)
        assert model.temperature_c > model.config.ambient_c

    def test_converges_to_steady_state(self):
        model = ThermalModel()
        for _ in range(20000):
            model.step(60.0, 0.01)
        assert model.temperature_c == pytest.approx(
            model.steady_state_c(60.0), abs=0.5
        )

    def test_cools_when_power_drops(self):
        model = ThermalModel()
        for _ in range(5000):
            model.step(80.0, 0.01)
        hot = model.temperature_c
        for _ in range(5000):
            model.step(10.0, 0.01)
        assert model.temperature_c < hot

    def test_steady_state_linear_in_power(self):
        model = ThermalModel()
        cfg = model.config
        assert model.steady_state_c(100.0) - model.steady_state_c(0.0) == (
            pytest.approx(100.0 * cfg.r_th_k_per_w)
        )

    def test_nonpositive_dt_rejected(self):
        with pytest.raises(ConfigError):
            ThermalModel().step(50.0, 0.0)


class TestThrottling:
    def test_no_throttle_below_limit(self):
        model = ThermalModel()
        assert model.throttle_factor() == 1.0

    def test_partial_throttle_between_limits(self):
        model = ThermalModel()
        model.temperature_c = 92.5  # halfway 85..100
        assert model.throttle_factor() == pytest.approx(0.5)

    def test_full_throttle_at_critical(self):
        model = ThermalModel()
        model.temperature_c = 100.0
        assert model.throttle_factor() == 0.0

    def test_throttle_monotonic_in_temperature(self):
        model = ThermalModel()
        factors = []
        for temp in (80.0, 87.0, 93.0, 99.0, 105.0):
            model.temperature_c = temp
            factors.append(model.throttle_factor())
        assert all(b <= a for a, b in zip(factors, factors[1:]))
