"""Tests for the sysfs-like cpufreq front-end."""

import pytest

from repro.errors import PlatformError
from repro.hw.cpufreq import CpuFreqInterface
from repro.hw.msr import MSRFile
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad
from repro.workloads.app import RunningApp
from repro.workloads.spec import spec_app


@pytest.fixture
def sky_cpufreq(sky_chip):
    return CpuFreqInterface(sky_chip.platform, sky_chip.msr), sky_chip


@pytest.fixture
def ryz_cpufreq(ryzen_chip):
    return CpuFreqInterface(ryzen_chip.platform, ryzen_chip.msr), ryzen_chip


class TestControl:
    def test_set_speed_reaches_chip(self, sky_cpufreq):
        cpufreq, chip = sky_cpufreq
        cpufreq.set_speed_mhz(3, 1900.0)
        assert chip.requested_frequency(3) == 1900.0

    def test_set_speed_khz(self, sky_cpufreq):
        cpufreq, chip = sky_cpufreq
        cpufreq.set_speed_khz(0, 1_500_000)
        assert chip.requested_frequency(0) == 1500.0

    def test_quantizes_to_grid(self, sky_cpufreq):
        cpufreq, chip = sky_cpufreq
        cpufreq.set_speed_mhz(0, 1849.0)
        assert chip.requested_frequency(0) == 1800.0

    def test_quantize_down_mode(self, sky_cpufreq):
        cpufreq, chip = sky_cpufreq
        cpufreq.set_speed_mhz(0, 1890.0, nearest=False)
        assert chip.requested_frequency(0) == 1800.0

    def test_clamps_out_of_range(self, sky_cpufreq):
        cpufreq, chip = sky_cpufreq
        cpufreq.set_speed_mhz(0, 99999.0)
        assert chip.requested_frequency(0) == 3000.0
        cpufreq.set_speed_mhz(0, 1.0)
        assert chip.requested_frequency(0) == 800.0

    def test_amd_25mhz_grid(self, ryz_cpufreq):
        cpufreq, chip = ryz_cpufreq
        cpufreq.set_speed_mhz(0, 2225.0)
        assert chip.requested_frequency(0) == 2225.0

    def test_set_all(self, sky_cpufreq):
        cpufreq, chip = sky_cpufreq
        cpufreq.set_all_mhz(1000.0)
        assert all(
            chip.requested_frequency(c) == 1000.0
            for c in chip.platform.core_ids()
        )

    def test_bad_cpu_rejected(self, sky_cpufreq):
        cpufreq, _ = sky_cpufreq
        with pytest.raises(PlatformError):
            cpufreq.set_speed_mhz(10, 1000.0)

    def test_mismatched_msr_file_rejected(self, skylake):
        with pytest.raises(PlatformError):
            CpuFreqInterface(skylake, MSRFile(2))


class TestReadback:
    def test_available_frequencies(self, sky_cpufreq):
        cpufreq, chip = sky_cpufreq
        freqs = cpufreq.scaling_available_frequencies_khz()
        assert freqs[0] == 800_000
        assert freqs[-1] == 3_000_000

    def test_scaling_limits(self, ryz_cpufreq):
        cpufreq, _ = ryz_cpufreq
        assert cpufreq.scaling_min_freq_khz == 400_000
        assert cpufreq.scaling_max_freq_khz == 3_800_000

    def test_cur_freq_shows_granted_not_requested(self, sky_cpufreq):
        """After RAPL throttling, scaling_cur_freq reads the granted
        frequency — the request/grant split Fig 4 relies on."""
        cpufreq, chip = sky_cpufreq
        for core_id in range(10):
            app = RunningApp(spec_app("cactusBSSN", steady=True),
                             instance=core_id)
            chip.assign_load(core_id, BatchCoreLoad(app, 2200.0))
        cpufreq.set_all_mhz(2200.0)
        chip.set_rapl_limit(40.0)
        chip.run_ticks(3000)
        assert cpufreq.current_freq_mhz(0) < 2200.0
        assert chip.requested_frequency(0) == 2200.0
