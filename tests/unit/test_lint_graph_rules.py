"""Whole-program lint layer: call graph, seed dataflow, new rules.

Each rule gets flag *and* pass fixtures: the pass cases pin the
false-positive boundary (per-parent writes, seeded hops, covered
snapshots) as hard as the flag cases pin detection.
"""

from __future__ import annotations

import textwrap

from repro.analysis.callgraph import Project
from repro.analysis.dataflow import SeedAnalysis
from repro.analysis.rules.rng_provenance import RngProvenanceRule
from repro.analysis.rules.shared_state import SharedStateRaceRule
from repro.analysis.rules.snapshot_completeness import (
    SnapshotCompletenessRule,
)
from repro.analysis.source import SourceFile


def project(*files: tuple[str, str]) -> Project:
    return Project([
        SourceFile.from_text(path, textwrap.dedent(code))
        for path, code in files
    ])


def run_project_rule(rule, *files: tuple[str, str]):
    return list(rule.check_project(project(*files)))


def run_file_rule(rule, code: str, path: str = "src/repro/hw/snip.py"):
    return list(rule.check(SourceFile.from_text(path, textwrap.dedent(code))))


class TestCallGraph:
    def test_process_target_is_a_worker_root(self):
        proj = project(
            ("src/repro/boss.py", """
                import multiprocessing as mp

                from repro.work import task

                def spawn():
                    proc = mp.Process(target=task)
                    proc.start()
            """),
            ("src/repro/work.py", """
                def task():
                    return 1
            """),
        )
        roots = {f.qualname for f in proj.worker_roots()}
        assert roots == {"repro.work.task"}

    def test_pool_map_first_arg_is_a_worker_root(self):
        proj = project(
            ("src/repro/boss.py", """
                def crunch(item):
                    return item * 2

                def run(pool, items):
                    return pool.map(crunch, items)
            """),
        )
        roots = {f.qualname for f in proj.worker_roots()}
        assert roots == {"repro.boss.crunch"}

    def test_reachability_spans_modules_with_chain(self):
        proj = project(
            ("src/repro/boss.py", """
                import multiprocessing as mp

                from repro.work import task

                def spawn():
                    mp.Process(target=task).start()
            """),
            ("src/repro/work.py", """
                from repro.helpers import deep

                def task():
                    return deep()
            """),
            ("src/repro/helpers.py", """
                def deep():
                    return 1
            """),
        )
        chains = proj.reachable_from(proj.worker_roots())
        assert "repro.helpers.deep" in chains
        assert chains["repro.helpers.deep"] == (
            "repro.work.task", "repro.helpers.deep",
        )

    def test_unknown_receiver_method_call_is_fuzzy(self):
        proj = project(
            ("src/repro/boss.py", """
                class Stepper:
                    def step(self):
                        return 1

                def run(thing):
                    return thing.step()
            """),
        )
        fuzzy_edges = [
            (caller, callee)
            for caller, callees in proj.edges().items()
            for callee, fuzzy in callees
            if fuzzy
        ]
        assert ("repro.boss.run", "repro.boss.Stepper.step") in fuzzy_edges


WORKER_PREFIX = textwrap.dedent("""
    import multiprocessing as mp

    CACHE = {}
    COUNT = 0

    def spawn():
        mp.Process(target=_worker).start()
""")


class TestSharedStateRace:
    def one_file(self, worker_body: str):
        code = WORKER_PREFIX + textwrap.dedent(worker_body)
        return run_project_rule(
            SharedStateRaceRule(), ("src/repro/pool.py", code)
        )

    def test_global_rebind_in_worker_flagged(self):
        findings = self.one_file("""
            def _worker():
                global COUNT
                COUNT = 1
        """)
        assert len(findings) == 1
        assert "rebinds module-level 'COUNT'" in findings[0].message
        assert "fork-worker entry _worker()" in findings[0].message

    def test_subscript_write_to_module_dict_flagged(self):
        findings = self.one_file("""
            def _worker():
                CACHE["k"] = 1
        """)
        assert len(findings) == 1
        assert "mutates module-level 'CACHE'" in findings[0].message

    def test_mutator_call_on_module_binding_flagged(self):
        findings = self.one_file("""
            def _worker():
                CACHE.update(k=1)
        """)
        assert len(findings) == 1
        assert ".update()" in findings[0].message

    def test_os_environ_write_flagged(self):
        findings = self.one_file("""
            import os

            def _worker():
                os.environ["X"] = "1"
        """)
        assert len(findings) == 1
        assert "os.environ" in findings[0].message

    def test_local_shadow_passes(self):
        assert not self.one_file("""
            def _worker():
                CACHE = {}
                CACHE["k"] = 1
                COUNT = 2
                return CACHE, COUNT
        """)

    def test_write_outside_worker_closure_passes(self):
        # the parent may write module state freely; only the forked
        # closure is constrained
        assert not self.one_file("""
            def _worker():
                return 1

            def parent_only():
                CACHE["k"] = 1
        """)

    def test_mutation_one_call_away_is_attributed_via_chain(self):
        findings = self.one_file("""
            def _worker():
                _helper()

            def _helper():
                CACHE["k"] = 1
        """)
        assert len(findings) == 1
        assert "via _worker -> _helper" in findings[0].message


class TestRngProvenance:
    def test_global_random_call_flagged(self):
        findings = run_file_rule(
            RngProvenanceRule(),
            """
            import random

            def jitter():
                return random.random()
            """,
        )
        assert len(findings) == 1
        assert "random.random" in findings[0].message

    def test_unseeded_constructor_flagged_seeded_passes(self):
        flagged = run_file_rule(
            RngProvenanceRule(),
            """
            import random

            rng = random.Random()
            """,
        )
        assert len(flagged) == 1
        assert "seed" in flagged[0].message
        assert not run_file_rule(
            RngProvenanceRule(),
            """
            import random

            def make(config):
                return random.Random(config.seed)
            """,
        )

    def test_system_random_flagged(self):
        findings = run_file_rule(
            RngProvenanceRule(),
            """
            import random

            rng = random.SystemRandom()
            """,
        )
        assert len(findings) == 1
        assert "OS entropy" in findings[0].message

    def test_unseeded_value_one_call_hop_away_flagged(self):
        # the Random(seed) construction looks innocent; the bug is the
        # caller feeding it wall-clock entropy — caught at the call site
        findings = run_project_rule(
            RngProvenanceRule(),
            ("src/repro/mk.py", """
                import random
                import time

                def make_rng(seed):
                    return random.Random(seed)

                def broken():
                    return make_rng(time.time_ns())
            """),
        )
        assert len(findings) == 1
        assert findings[0].context == "return make_rng(time.time_ns())"

    def test_seeded_value_across_call_hop_passes(self):
        assert not run_project_rule(
            RngProvenanceRule(),
            ("src/repro/mk.py", """
                import random

                SALT = 77

                def make_rng(seed):
                    return random.Random(seed)

                def fine(config):
                    return make_rng(config.seed ^ SALT)
            """),
        )

    def test_seed_analysis_events_carry_kind(self):
        proj = project(("src/repro/mk.py", """
            import random

            def bad(entropy):
                return random.Random(entropy)
        """))
        analysis = SeedAnalysis(proj)
        analysis.run()
        # param-dependent construction with no seeded caller anywhere:
        # reported once the fixpoint settles
        assert all(
            e.kind in ("construct", "argument") for e in analysis.events
        )


class TestSnapshotCompleteness:
    def test_missing_attr_flagged_with_mutating_method(self):
        findings = run_file_rule(
            SnapshotCompletenessRule(),
            """
            class Gauge:
                def __init__(self):
                    self._level = 0.0
                    self._peak = 0.0

                def observe(self, v):
                    self._level = v
                    self._peak = max(self._peak, v)

                def snapshot(self):
                    return {"level": self._level}

                def restore(self, state):
                    self._level = state["level"]
            """,
        )
        assert len(findings) == 1
        assert "'self._peak'" in findings[0].message
        assert "observe()" in findings[0].message

    def test_covered_pair_passes(self):
        assert not run_file_rule(
            SnapshotCompletenessRule(),
            """
            class Gauge:
                def __init__(self):
                    self._level = 0.0
                    self._peak = 0.0

                def observe(self, v):
                    self._level = v
                    self._peak = max(self._peak, v)

                def snapshot(self):
                    return {"level": self._level, "peak": self._peak}

                def restore(self, state):
                    self._level = state["level"]
                    self._peak = state["peak"]
            """,
        )

    def test_restore_x_pairs_with_x(self):
        findings = run_file_rule(
            SnapshotCompletenessRule(),
            """
            class Limiter:
                def __init__(self):
                    self._avg = 0.0
                    self._primed = False

                def observe(self, p):
                    self._avg = p
                    self._primed = True

                def control_state(self):
                    return (self._avg,)

                def restore_control_state(self, state):
                    (self._avg,) = state
            """,
        )
        assert len(findings) == 1
        assert "'self._primed'" in findings[0].message
        assert "control_state()/restore_control_state()" in (
            findings[0].message
        )

    def test_init_only_attrs_are_not_mutable(self):
        assert not run_file_rule(
            SnapshotCompletenessRule(),
            """
            class Box:
                def __init__(self, config):
                    self.config = config
                    self._count = 0

                def bump(self):
                    self._count += 1

                def snapshot(self):
                    return {"count": self._count}

                def restore(self, state):
                    self._count = state["count"]
            """,
        )

    def test_inplace_mutator_counts_as_mutation(self):
        findings = run_file_rule(
            SnapshotCompletenessRule(),
            """
            class Log:
                def __init__(self):
                    self._items = []
                    self._n = 0

                def push(self, item):
                    self._items.append(item)
                    self._n += 1

                def snapshot(self):
                    return {"n": self._n}

                def restore(self, state):
                    self._n = state["n"]
            """,
        )
        assert len(findings) == 1
        assert "'self._items'" in findings[0].message

    def test_class_without_pair_is_ignored(self):
        assert not run_file_rule(
            SnapshotCompletenessRule(),
            """
            class Free:
                def poke(self):
                    self._x = 1
            """,
        )
