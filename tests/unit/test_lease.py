"""Tests for the node-side cap-lease ladder."""

import pytest

from repro.cluster.lease import LEASE_CODES, LeaseState, NodeLease
from repro.cluster.transport import ARBITER, GRANT, Envelope, TransportStats
from repro.errors import ConfigError


def grant(dst="node0", epoch=0, seq=0, cap=50.0):
    return Envelope(
        kind=GRANT, src=ARBITER, dst=dst, epoch=epoch, seq=seq, payload=cap
    )


def make_lease(ttl=3, floor=12.0, stats=None):
    return NodeLease("node0", floor_w=floor, ttl_epochs=ttl, stats=stats)


class TestValidation:
    def test_ttl_must_be_positive(self):
        with pytest.raises(ConfigError):
            make_lease(ttl=0)

    def test_floor_must_be_positive(self):
        with pytest.raises(ConfigError):
            make_lease(floor=0.0)


class TestLadder:
    def test_boots_degraded_at_floor(self):
        lease = make_lease()
        assert lease.state is LeaseState.DEGRADED
        assert lease.cap_w == 12.0
        assert not lease.safe

    def test_grant_enters_granted(self):
        lease = make_lease()
        lease.observe([grant(epoch=0, cap=42.0)], 0)
        assert lease.state is LeaseState.GRANTED
        assert lease.cap_w == 42.0
        assert lease.misses == 0

    def test_full_ladder_granted_to_safe(self):
        lease = make_lease(ttl=3)
        lease.observe([grant(epoch=0, cap=42.0)], 0)
        walk = []
        for epoch in range(1, 6):
            lease.observe([], epoch)
            walk.append((lease.state, lease.cap_w))
        assert walk == [
            (LeaseState.HOLDOVER, 42.0),  # miss 1: lease still valid
            (LeaseState.HOLDOVER, 42.0),  # miss 2
            (LeaseState.DEGRADED, 12.0),  # miss 3 == ttl: floor
            (LeaseState.SAFE, 12.0),      # miss 4 == ttl + 1: backstop
            (LeaseState.SAFE, 12.0),
        ]

    def test_safe_within_ttl_plus_one_misses(self):
        lease = make_lease(ttl=1)
        lease.observe([grant(epoch=0)], 0)
        lease.observe([], 1)
        assert lease.state is LeaseState.DEGRADED
        lease.observe([], 2)
        assert lease.safe

    def test_never_granted_node_skips_holdover(self):
        # with no applied grant there is nothing to hold over: the boot
        # path stays at the floor and expires straight to SAFE
        lease = make_lease(ttl=2)
        lease.observe([], 0)
        lease.observe([], 1)
        assert lease.state is LeaseState.DEGRADED
        lease.observe([], 2)
        assert lease.state is LeaseState.SAFE

    def test_recovery_reenters_granted(self):
        lease = make_lease(ttl=1)
        lease.observe([grant(epoch=0, cap=42.0)], 0)
        for epoch in range(1, 4):
            lease.observe([], epoch)
        assert lease.safe
        lease.observe([grant(epoch=4, cap=37.0)], 4)
        assert lease.state is LeaseState.GRANTED
        assert lease.cap_w == 37.0
        assert lease.misses == 0


class TestEnvelopeFiltering:
    def test_duplicate_grant_is_stale(self):
        stats = TransportStats()
        lease = make_lease(stats=stats)
        lease.observe([grant(epoch=0, cap=42.0)], 0)
        # the duplicate neither refreshes the lease nor winds it back
        lease.observe([grant(epoch=0, cap=42.0)], 1)
        assert lease.state is LeaseState.HOLDOVER
        assert stats.stale == 1

    def test_reordered_straggler_cannot_wind_cap_backwards(self):
        lease = make_lease()
        lease.observe([grant(epoch=3, cap=30.0)], 3)
        lease.observe([grant(epoch=2, cap=99.0)], 4)
        assert lease.cap_w == 30.0
        assert lease.state is LeaseState.HOLDOVER

    def test_newest_of_a_batch_wins(self):
        # a delayed epoch-2 grant and the fresh epoch-3 grant arrive in
        # one delivery batch, in any order: epoch 3 is applied
        lease = make_lease()
        lease.observe([grant(epoch=3, cap=33.0), grant(epoch=2, cap=22.0)], 3)
        assert lease.cap_w == 33.0
        lease2 = make_lease()
        lease2.observe([grant(epoch=2, cap=22.0), grant(epoch=3, cap=33.0)], 3)
        assert lease2.cap_w == 33.0

    def test_other_nodes_grants_ignored(self):
        lease = make_lease()
        lease.observe([grant(dst="node1", epoch=0, cap=77.0)], 0)
        assert lease.state is LeaseState.DEGRADED
        assert lease.cap_w == 12.0


class TestCodes:
    def test_codes_monotone_in_severity(self):
        assert (
            LEASE_CODES[LeaseState.GRANTED]
            < LEASE_CODES[LeaseState.HOLDOVER]
            < LEASE_CODES[LeaseState.DEGRADED]
            < LEASE_CODES[LeaseState.SAFE]
        )


class TestTTLBoundary:
    def test_renewal_at_exactly_expiry_epoch_reenters_granted(self):
        # the last epoch before SAFE: misses == ttl (DEGRADED).  A
        # renewal landing right then must re-enter GRANTED, not linger
        # in DEGRADED.
        lease = make_lease(ttl=3)
        lease.observe([grant(epoch=0, cap=42.0)], 0)
        for epoch in range(1, 4):
            lease.observe([], epoch)
        assert lease.state is LeaseState.DEGRADED
        assert lease.misses == lease.ttl_epochs
        lease.observe([grant(epoch=4, seq=1, cap=40.0)], 4)
        assert lease.state is LeaseState.GRANTED
        assert lease.cap_w == 40.0
        assert lease.misses == 0


class TestRestart:
    def test_restart_boots_safe_at_floor(self):
        lease = make_lease(ttl=3)
        lease.observe([grant(epoch=0, cap=42.0)], 0)
        lease.restart(fenced_epoch=5)
        assert lease.state is LeaseState.SAFE
        assert lease.cap_w == lease.floor_w
        assert lease.granted_epoch == -1

    def test_restart_fences_off_pre_crash_grants(self):
        # a straggler grant from at or before the fenced epoch — watts
        # the arbiter may have re-budgeted — must never be applied
        lease = make_lease(ttl=3)
        lease.observe([grant(epoch=0, cap=42.0)], 0)
        lease.restart(fenced_epoch=5)
        lease.observe([grant(epoch=4, seq=1, cap=99.0)], 6)
        assert lease.state is LeaseState.SAFE
        assert lease.cap_w == lease.floor_w

    def test_restart_accepts_fresh_grant(self):
        lease = make_lease(ttl=3)
        lease.restart(fenced_epoch=5)
        lease.observe([grant(epoch=6, seq=9, cap=33.0)], 6)
        assert lease.state is LeaseState.GRANTED
        assert lease.cap_w == 33.0

    def test_snapshot_restore_round_trip(self):
        lease = make_lease(ttl=3)
        lease.observe([grant(epoch=0, cap=42.0)], 0)
        lease.observe([], 1)
        snap = lease.snapshot()
        other = make_lease(ttl=3)
        other.restore(snap)
        assert other.snapshot() == snap
        assert other.state is LeaseState.HOLDOVER
        assert other.cap_w == 42.0
        # the restored guard still rejects the pre-snapshot grant
        other.observe([grant(epoch=0, cap=99.0)], 2)
        assert other.cap_w == 42.0
