"""Tests for the paper's discussed extensions: highest-useful-frequency
(section 4.4), game-ability (section 8), and LP consolidation (section
4.4's time-slicing alternative to starvation)."""

import pytest

from repro.core.consolidate import plan_lp_consolidation
from repro.errors import ConfigError
from repro.sim.perf_model import highest_useful_frequency
from repro.workloads.gaming import nop_padded, useful_fraction
from repro.workloads.spec import spec_app


class TestHighestUsefulFrequency:
    def test_compute_bound_gets_max(self, skylake):
        app = spec_app("exchange2")  # ~pure compute
        assert highest_useful_frequency(skylake, app) == (
            skylake.max_frequency_mhz
        )

    def test_memory_bound_caps_early(self, skylake):
        app = spec_app("omnetpp")
        useful = highest_useful_frequency(skylake, app)
        assert useful < skylake.max_nominal_frequency_mhz

    def test_avx_cap_respected(self, skylake):
        app = spec_app("cam4")
        assert highest_useful_frequency(skylake, app) <= (
            skylake.avx_max_frequency_mhz
        )

    def test_result_on_grid(self, platform):
        for name in ("gcc", "omnetpp", "lbm"):
            useful = highest_useful_frequency(platform, spec_app(name))
            assert useful in platform.pstates.frequencies_mhz

    def test_stricter_threshold_caps_lower(self, skylake):
        app = spec_app("perlbench")
        lenient = highest_useful_frequency(
            skylake, app, min_speedup_per_step=0.3
        )
        strict = highest_useful_frequency(
            skylake, app, min_speedup_per_step=0.9
        )
        assert strict <= lenient

    def test_bad_threshold_rejected(self, skylake):
        with pytest.raises(ConfigError):
            highest_useful_frequency(
                skylake, spec_app("gcc"), min_speedup_per_step=0.0
            )

    def test_ordering_matches_memory_boundedness(self, skylake):
        """More memory-bound -> lower useful frequency."""
        exchange = highest_useful_frequency(skylake, spec_app("exchange2"))
        omnetpp = highest_useful_frequency(skylake, spec_app("omnetpp"))
        assert omnetpp < exchange


class TestGaming:
    def test_nop_padding_inflates_apparent_ipc(self):
        app = spec_app("gcc")
        gamed = nop_padded(app, 0.5, pipeline_overhead=0.0)
        assert gamed.base_ipc == pytest.approx(2 * app.base_ipc)

    def test_overhead_costs_real_throughput(self):
        app = spec_app("gcc")
        gamed = nop_padded(app, 0.5, pipeline_overhead=0.10)
        useful_ips = gamed.ips(2200.0, 2200.0) * useful_fraction(0.5)
        honest_ips = app.ips(2200.0, 2200.0)
        assert useful_ips < honest_ips

    def test_zero_padding_is_identity(self):
        app = spec_app("gcc")
        assert nop_padded(app, 0.0) is app

    def test_instruction_budget_inflated(self):
        app = spec_app("leela")
        gamed = nop_padded(app, 0.25, pipeline_overhead=0.0)
        assert gamed.instructions == pytest.approx(
            app.instructions / 0.75
        )

    def test_bad_fractions_rejected(self):
        app = spec_app("gcc")
        with pytest.raises(ConfigError):
            nop_padded(app, 1.0)
        with pytest.raises(ConfigError):
            useful_fraction(-0.1)

    def test_gamed_name_distinct(self):
        gamed = nop_padded(spec_app("gcc"), 0.4)
        assert gamed.name == "gcc+nop40"


class TestConsolidationPlan:
    LABELS = [f"lp{i}" for i in range(7)]

    def test_zero_budget_starves_all(self):
        plan = plan_lp_consolidation(self.LABELS, 0.5, 1.5)
        assert plan.active_core_count == 0
        assert plan.starved == tuple(self.LABELS)

    def test_partial_budget_packs_round_robin(self):
        plan = plan_lp_consolidation(self.LABELS, 3.2, 1.5)  # 2 cores
        assert plan.active_core_count == 2
        assert plan.starved == ()
        assert len(plan.assignments) == 2
        sizes = sorted(len(g) for g in plan.assignments)
        assert sizes == [3, 4]
        assert sorted(plan.runnable) == sorted(self.LABELS)

    def test_ample_budget_one_core_each(self):
        plan = plan_lp_consolidation(self.LABELS, 100.0, 1.5)
        assert plan.active_core_count == len(self.LABELS)
        assert all(len(g) == 1 for g in plan.assignments)

    def test_validation(self):
        with pytest.raises(ConfigError):
            plan_lp_consolidation([], 10.0, 1.0)
        with pytest.raises(ConfigError):
            plan_lp_consolidation(["a", "a"], 10.0, 1.0)
        with pytest.raises(ConfigError):
            plan_lp_consolidation(["a"], 10.0, 0.0)


class TestUsefulFrequencyMode:
    def test_config_caps_managed_apps(self):
        from repro import AppSpec, ExperimentConfig, build_stack

        config = ExperimentConfig(
            platform="skylake", policy="frequency-shares", limit_w=50.0,
            apps=(AppSpec("omnetpp"), AppSpec("exchange2")),
            useful_frequency_mode=True, tick_s=5e-3,
        )
        stack = build_stack(config)
        caps = {
            a.label: a.max_frequency_mhz for a in stack.daemon.policy.apps
        }
        assert caps["omnetpp#0"] < caps["exchange2#0"]
