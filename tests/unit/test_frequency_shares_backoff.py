"""Unit tests for the frequency-shares probe-backoff stabilisation."""

import pytest

from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.types import AppTelemetry, ManagedApp, PolicyInputs


def policy_for(skylake, n=4, limit=45.0):
    apps = [
        ManagedApp(label=f"a{i}", core_id=i, shares=1.0) for i in range(n)
    ]
    return FrequencySharesPolicy(skylake, apps, limit)


def feed(policy, package_w, iteration):
    telem = tuple(
        AppTelemetry(
            label=app.label, active_frequency_mhz=2000.0, ips=1e9,
            busy_fraction=1.0, power_w=None, parked=False,
        )
        for app in policy.apps
    )
    return policy.redistribute(PolicyInputs(
        iteration=iteration, limit_w=policy.limit_w,
        package_power_w=package_w, apps=telem, current_targets={},
    ))


class TestProbeBackoff:
    def test_small_overshoot_rolls_back_and_holds(self, skylake):
        policy = policy_for(skylake)
        policy.initial_distribution()
        # settle somewhere mid-range
        for i in range(1, 15):
            feed(policy, 60.0, i)
        base = dict(policy._targets)
        # tiny headroom -> small (dither-size) probe
        d_up = feed(policy, 44.0, 20)
        assert d_up.targets["a0"] > base["a0"]
        # the probe violates -> full rollback
        d_back = feed(policy, 47.0, 21)
        assert d_back.targets["a0"] == pytest.approx(base["a0"], abs=1.0)
        # and climbing is refused during the hold
        d_hold = feed(policy, 44.0, 22)
        assert d_hold.targets["a0"] == pytest.approx(base["a0"], abs=1.0)

    def test_hold_doubles_on_repeat(self, skylake):
        policy = policy_for(skylake)
        policy.initial_distribution()
        for i in range(1, 15):
            feed(policy, 60.0, i)
        initial_hold = policy._hold_length
        feed(policy, 44.0, 20)   # probe
        feed(policy, 47.0, 21)   # violate
        assert policy._hold_length == 2 * initial_hold

    def test_large_overshoot_halves_instead_of_discarding(self, skylake):
        """A genuinely big climb that overshoots keeps half its progress
        (binary convergence) — critical when the alpha model is badly
        mis-calibrated."""
        policy = policy_for(skylake)
        policy.initial_distribution()
        for i in range(1, 15):
            feed(policy, 70.0, i)  # drive down
        low_pool = policy._pool_mhz
        # huge headroom -> big climb
        feed(policy, 20.0, 20)
        climbed_pool = policy._pool_mhz
        assert climbed_pool > low_pool + 1200.0
        # violation: keep half the climb
        feed(policy, 50.0, 21)
        assert policy._pool_mhz == pytest.approx(
            (low_pool + climbed_pool) / 2, rel=0.01
        )

    def test_genuine_overload_resets_backoff(self, skylake):
        policy = policy_for(skylake)
        policy.initial_distribution()
        for i in range(1, 15):
            feed(policy, 60.0, i)
        feed(policy, 44.0, 20)
        feed(policy, 47.0, 21)   # dither violation: hold doubled
        assert policy._hold_length > policy.probe_hold_initial
        # an over-limit iteration NOT preceded by our own up-move means
        # the workload changed: backoff resets
        feed(policy, 70.0, 25)
        assert policy._hold_length == policy.probe_hold_initial

    def test_hold_capped(self, skylake):
        policy = policy_for(skylake)
        policy.initial_distribution()
        iteration = 1
        for i in range(1, 15):
            feed(policy, 60.0, iteration)
            iteration += 1
        for _ in range(12):  # many probe/violate rounds
            feed(policy, 44.0, iteration)
            iteration += policy._hold_length + 1
            feed(policy, 47.0, iteration)
            iteration += 1
        assert policy._hold_length <= policy.probe_hold_max
