"""Tests for the analytic power model."""

import pytest

from repro.errors import SimulationError
from repro.sim.power_model import (
    core_power_breakdown,
    core_power_watts,
    package_power_watts,
)


class TestCorePower:
    def test_idle_core_draws_floor(self, platform):
        power = core_power_watts(platform, 0.0, 0.0, 0.0, active=False)
        assert power == platform.power.idle_core_watts

    def test_zero_busy_active_draws_floor(self, platform):
        power = core_power_watts(platform, 2000.0, 1.0, 0.0, active=True)
        assert power == platform.power.idle_core_watts

    def test_power_increases_with_frequency(self, platform):
        lo = core_power_watts(platform, platform.min_frequency_mhz, 1.0, 1.0)
        hi = core_power_watts(platform, platform.max_frequency_mhz, 1.0, 1.0)
        assert hi > lo

    def test_power_superlinear_in_frequency(self, platform):
        """V rises with f, so P grows faster than linearly (P ∝ V²f)."""
        f1 = platform.min_frequency_mhz
        f2 = platform.max_nominal_frequency_mhz
        p1 = core_power_watts(platform, f1, 1.0, 1.0)
        p2 = core_power_watts(platform, f2, 1.0, 1.0)
        assert p2 / p1 > f2 / f1

    def test_power_scales_with_c_eff(self, platform):
        ld = core_power_watts(platform, 2000.0, 0.8, 1.0)
        hd = core_power_watts(platform, 2000.0, 1.3, 1.0)
        assert hd > ld

    def test_busy_fraction_scales_dynamic_only(self, platform):
        full = core_power_breakdown(platform, 2000.0, 1.0, 1.0)
        half = core_power_breakdown(platform, 2000.0, 1.0, 0.5)
        assert half.dynamic_w == pytest.approx(full.dynamic_w / 2)
        assert half.leakage_w == full.leakage_w

    def test_breakdown_sums_to_total(self, platform):
        breakdown = core_power_breakdown(platform, 1800.0, 1.1, 0.8)
        assert breakdown.total_w == pytest.approx(
            breakdown.dynamic_w + breakdown.leakage_w + breakdown.idle_w
        )

    def test_active_zero_frequency_rejected(self, platform):
        with pytest.raises(SimulationError):
            core_power_watts(platform, 0.0, 1.0, 1.0, active=True)

    def test_bad_busy_fraction_rejected(self, platform):
        with pytest.raises(SimulationError):
            core_power_watts(platform, 2000.0, 1.0, 1.5)

    def test_turbo_voltage_step_produces_power_jump(self, skylake):
        """Entering the turbo bins costs a discrete power step — the ~5 W
        package jump of paper Fig 2."""
        nominal = core_power_watts(skylake, 2200.0, 1.0, 1.0)
        turbo = core_power_watts(skylake, 2300.0, 1.0, 1.0)
        # far more than the 100 MHz alone would explain (~5%)
        assert turbo > nominal * 1.15


class TestDynamicRange:
    def test_ryzen_core_power_range(self, ryzen):
        """Paper section 5.2: core power varies by a factor of 12-14
        (measured on Ryzen, the platform with per-core counters).  With
        a real app the activity factor compresses the constant-c_eff
        ratio toward that band."""
        from repro.workloads.spec import spec_app

        app = spec_app("omnetpp")
        powers = []
        for freq in (ryzen.min_frequency_mhz, ryzen.max_frequency_mhz):
            c_eff = app.c_eff * app.activity_power_factor(
                freq, ryzen.reference_frequency_mhz
            )
            powers.append(core_power_watts(ryzen, freq, c_eff, 1.0))
        assert 10.0 <= powers[1] / powers[0] <= 16.0


class TestPackagePower:
    def test_adds_uncore(self, platform):
        cores = [1.0] * platform.n_cores
        assert package_power_watts(platform, cores) == pytest.approx(
            platform.n_cores + platform.power.uncore_watts
        )

    def test_empty_core_list(self, platform):
        assert package_power_watts(platform, []) == (
            platform.power.uncore_watts
        )

    def test_skylake_tdp_anchor(self, skylake):
        """Ten cactusBSSN-class cores at nominal max should land near the
        85 W TDP (the calibration anchor)."""
        per_core = core_power_watts(skylake, 2200.0, 1.25 * 0.85, 1.0)
        pkg = package_power_watts(skylake, [per_core] * 10)
        assert 70.0 <= pkg <= 90.0
