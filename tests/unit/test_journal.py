"""Tests for the write-ahead cluster control-plane journal."""

import json

import pytest

from repro.cluster import Journal, JournalEntry, run_cluster
from repro.cluster.journal import _entry_to_jsonable
from repro.errors import ConfigError
from repro.experiments.cluster_exp import default_cluster_config


def make_fence(epoch, *, admitted=("node0",), down=()):
    return {
        "transport": {
            "order": 3,
            "rng": (3, (1, 2, 3), None),
            "queues": {},
            "stats": {
                "sent": 3, "delivered": 3, "dropped": 0, "delayed": 0,
                "duplicated": 0, "stale": 0,
                "window": {
                    "sent": 0, "delivered": 0, "dropped": 0,
                    "delayed": 0, "duplicated": 0, "stale": 0,
                },
            },
        },
        "seqs": {"arbiter": 2},
        "admitted": list(admitted),
        "down": list(down),
    }


class TestEntries:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            JournalEntry(seq=0, epoch=0, kind="bogus", data={})

    def test_negative_epoch_rejected(self):
        with pytest.raises(ConfigError):
            JournalEntry(seq=0, epoch=-1, kind="fence", data={})

    def test_append_assigns_dense_seqs(self):
        journal = Journal()
        a = journal.append("admit", 0, {"nodes": ["node0"]})
        b = journal.append("crash", 1, {"node": "node0"})
        assert (a.seq, b.seq) == (0, 1)
        assert len(journal) == 2

    def test_fence_tracks_last_fenced_epoch(self):
        journal = Journal()
        assert journal.last_fenced_epoch == -1
        journal.append("admit", 0, {"nodes": ["node0"]})
        assert journal.last_fenced_epoch == -1
        journal.append("fence", 0, make_fence(0))
        assert journal.last_fenced_epoch == 0
        journal.append("fence", 3, make_fence(3))
        assert journal.last_fenced_epoch == 3

    def test_last_of_returns_newest(self):
        journal = Journal()
        journal.append("crash", 1, {"node": "node0"})
        journal.append("crash", 4, {"node": "node1"})
        assert journal.last_of("crash").data == {"node": "node1"}
        assert journal.last_of("readmit") is None


class TestSerialization:
    def _real_journal(self):
        config = default_cluster_config(
            n_nodes=2, seed=7, crash_faults="node-restart"
        )
        return run_cluster(config, 100.0).journal

    def test_jsonl_round_trip_is_byte_stable(self):
        journal = self._real_journal()
        text = journal.to_jsonl()
        reloaded = Journal.from_jsonl(text)
        assert reloaded.to_jsonl() == text
        assert reloaded.last_fenced_epoch == journal.last_fenced_epoch
        assert len(reloaded) == len(journal)

    def test_round_trip_preserves_replay_state(self):
        journal = self._real_journal()
        reloaded = Journal.from_jsonl(journal.to_jsonl())
        assert reloaded.replay() == journal.replay()

    def test_torn_final_line_is_dropped(self):
        journal = self._real_journal()
        text = journal.to_jsonl()
        torn = text[: len(text) - 40]  # truncate mid-record
        reloaded = Journal.from_jsonl(torn)
        assert len(reloaded) == len(journal) - 1

    def test_mid_file_corruption_raises(self):
        journal = self._real_journal()
        lines = journal.to_jsonl().splitlines()
        lines[2] = lines[2][:-10]
        with pytest.raises(ConfigError, match="corrupt"):
            Journal.from_jsonl("\n".join(lines) + "\n")

    def test_sequence_gap_raises(self):
        journal = Journal()
        journal.append("admit", 0, {"nodes": ["node0"]})
        journal.append("crash", 1, {"node": "node0"})
        lines = journal.to_jsonl().splitlines()
        with pytest.raises(ConfigError, match="sequence gap"):
            Journal.from_jsonl(lines[1] + "\n")

    def test_dump_and_load(self, tmp_path):
        journal = self._real_journal()
        path = tmp_path / "journal.jsonl"
        journal.dump(path)
        assert Journal.load(path).to_jsonl() == journal.to_jsonl()

    def test_same_seed_produces_identical_journals(self):
        config = default_cluster_config(
            n_nodes=2, seed=3, crash_faults="restart-storm"
        )
        a = run_cluster(config, 100.0).journal
        b = run_cluster(config, 100.0).journal
        assert a.to_jsonl() == b.to_jsonl()


class TestReplay:
    def test_empty_journal_replays_to_cold_start(self):
        state = Journal().replay()
        assert state.last_fenced_epoch == -1
        assert state.admitted == ()
        assert state.steps == ()

    def test_unfenced_suffix_is_ignored(self):
        journal = Journal()
        journal.append("admit", 0, {"nodes": ["node0"]})
        journal.append(
            "step", 0,
            {"caps": {"node0": 50.0}, "safe": [], "down": [],
             "restarts": []},
        )
        journal.append("fence", 0, make_fence(0))
        # epoch 1 never fenced: its step must not be replayed
        journal.append(
            "step", 1,
            {"caps": {"node0": 40.0}, "safe": [], "down": [],
             "restarts": []},
        )
        state = journal.replay()
        assert state.last_fenced_epoch == 0
        assert [s[0] for s in state.steps] == [0]

    def test_replay_folds_fence_and_steps(self):
        config = default_cluster_config(
            n_nodes=2, seed=1, crash_faults="node-restart"
        )
        run = run_cluster(config, 100.0)
        state = run.journal.replay()
        assert state.last_fenced_epoch == run.n_epochs - 1
        assert state.admitted == ("node0", "node1")
        assert len(state.steps) == run.n_epochs
        assert set(state.leases) == {"node0", "node1"}
        assert state.arbiter is not None
        # the disk round trip preserves the folded state exactly
        reloaded = Journal.from_jsonl(run.journal.to_jsonl())
        assert reloaded.replay() == state


class TestEntryJsonForm:
    def test_every_entry_is_json_serializable(self):
        config = default_cluster_config(
            n_nodes=2, seed=5, crash_faults="restart-storm"
        )
        run = run_cluster(config, 100.0)
        kinds = set()
        for entry in run.journal.entries:
            json.dumps(_entry_to_jsonable(entry), sort_keys=True)
            kinds.add(entry.kind)
        assert {"crash", "readmit", "arbitration", "leases", "step",
                "fence", "admit"} <= kinds
