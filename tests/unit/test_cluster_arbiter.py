"""Tests for the cluster arbiter's epoch redistribution."""

import pytest

from repro.cluster import ClusterArbiter, ClusterConfig, GroupSpec, NodeSpec
from repro.cluster.node import NodeEpochReport
from repro.config import AppSpec
from repro.errors import ConfigError

APPS = tuple(AppSpec("cactusBSSN", shares=50.0) for _ in range(6))


def node(name, **kwargs):
    kwargs.setdefault("min_cap_w", 10.0)
    kwargs.setdefault("max_cap_w", 60.0)
    return NodeSpec(name=name, apps=APPS, **kwargs)


def report(name, epoch=0, *, power, pressure=1.0, cap=30.0,
           quarantined=0, samples=10, crashed=False):
    return NodeEpochReport(
        name=name,
        epoch=epoch,
        t_end_s=(epoch + 1) * 10.0,
        cap_w=cap,
        mean_power_w=power,
        throttle_pressure=pressure,
        headroom_w=max(cap - power, 0.0),
        parked_cores=0,
        quarantined_cores=quarantined,
        samples=samples,
        crashed=crashed,
    )


def make_arbiter(*nodes, budget=75.0, groups=()):
    config = ClusterConfig(budget_w=budget, nodes=nodes, groups=groups)
    arbiter = ClusterArbiter(config)
    arbiter.admit([spec.name for spec in nodes])
    return arbiter


class TestFirstEpoch:
    def test_demand_blind_split_follows_shares(self):
        arbiter = make_arbiter(
            node("a", shares=2.0), node("b", shares=1.0)
        )
        grant = arbiter.rebalance(0, {})
        assert grant.caps_w["a"] == pytest.approx(50.0)
        assert grant.caps_w["b"] == pytest.approx(25.0)

    def test_empty_membership_grants_nothing(self):
        config = ClusterConfig(budget_w=75.0, nodes=(node("a"),))
        arbiter = ClusterArbiter(config)
        grant = arbiter.rebalance(0, {})
        assert grant.caps_w == {}
        assert grant.total_w == 0.0

    def test_admit_validates_names(self):
        config = ClusterConfig(budget_w=75.0, nodes=(node("a"),))
        arbiter = ClusterArbiter(config)
        with pytest.raises(ConfigError):
            arbiter.admit(["ghost"])


class TestDemandDrivenRebalance:
    def test_unthrottled_node_releases_budget(self):
        arbiter = make_arbiter(node("a"), node("b"))
        arbiter.rebalance(0, {})
        # a is idle (low draw, no pressure); b is pinned at its cap
        grant = arbiter.rebalance(1, {
            "a": report("a", power=12.0, pressure=0.0, cap=37.5),
            "b": report("b", power=37.4, pressure=0.9, cap=37.5),
        })
        # a's demand ceiling ~ 12*1.25 = 15 W; the freed watts go to b
        assert grant.caps_w["a"] == pytest.approx(15.0, abs=0.5)
        assert grant.caps_w["b"] > 50.0
        assert grant.total_w <= 75.0 + 1e-9

    def test_quarantined_cores_shrink_the_claim(self):
        arbiter = make_arbiter(node("a"), node("b"))
        arbiter.rebalance(0, {})
        healthy = report("a", power=30.0, pressure=1.0, cap=37.5)
        sick = report("b", power=30.0, pressure=1.0, cap=37.5,
                      quarantined=4)
        grant = arbiter.rebalance(1, {"a": healthy, "b": sick})
        # b lost four of six cores: its demand ceiling scales by the
        # healthy third, and a picks up the released budget
        assert grant.caps_w["b"] == pytest.approx(25.0)
        assert grant.caps_w["a"] == pytest.approx(50.0)

    def test_floors_always_honoured(self):
        arbiter = make_arbiter(
            node("a", min_cap_w=20.0), node("b", min_cap_w=10.0)
        )
        arbiter.rebalance(0, {})
        grant = arbiter.rebalance(1, {
            # a reports nothing drawn: its ceiling collapses, but the
            # floor must hold it at 20 W
            "a": report("a", power=0.0, pressure=0.0, cap=37.5),
            "b": report("b", power=37.0, pressure=1.0, cap=37.5),
        })
        assert grant.caps_w["a"] == pytest.approx(20.0)

    def test_empty_report_holds_over_last_demand(self):
        arbiter = make_arbiter(node("a"), node("b"))
        arbiter.rebalance(0, {})
        first = arbiter.rebalance(1, {
            "a": report("a", power=12.0, pressure=0.0, cap=37.5),
            "b": report("b", power=37.0, pressure=1.0, cap=37.5),
        })
        # a tick storm swallows a's epoch: samples=0 must not reset
        # a's demand to an unconstrained bid
        second = arbiter.rebalance(2, {
            "a": report("a", 1, power=0.0, pressure=0.0,
                        cap=first.caps_w["a"], samples=0),
            "b": report("b", 1, power=37.0, pressure=1.0,
                        cap=first.caps_w["b"]),
        })
        assert second.caps_w["a"] == pytest.approx(
            first.caps_w["a"], abs=1.0
        )


class TestCrashHandling:
    def test_crashed_reporter_retired_and_cap_reflows(self):
        arbiter = make_arbiter(node("a"), node("b"), node("c"),
                               budget=90.0)
        arbiter.rebalance(0, {})
        grant = arbiter.rebalance(1, {
            "a": report("a", power=29.0, pressure=1.0, cap=30.0),
            "b": report("b", power=29.0, pressure=1.0, cap=30.0),
            "c": report("c", power=20.0, pressure=1.0, cap=30.0,
                        crashed=True),
        })
        assert "c" not in grant.caps_w
        assert "c" not in arbiter.members
        assert grant.caps_w["a"] > 30.0
        assert grant.total_w <= 90.0 + 1e-9

    def test_all_crashed_leaves_empty_grant(self):
        arbiter = make_arbiter(node("a"))
        arbiter.rebalance(0, {})
        grant = arbiter.rebalance(1, {
            "a": report("a", power=20.0, crashed=True),
        })
        assert grant.caps_w == {}


class TestGroups:
    def test_group_shares_split_budget_between_pools(self):
        prod = (node("p0", group="prod"), node("p1", group="prod"))
        batch = (node("b0", group="batch"), node("b1", group="batch"))
        arbiter = make_arbiter(
            *prod, *batch, budget=120.0,
            groups=(GroupSpec("prod", shares=2.0),
                    GroupSpec("batch", shares=1.0)),
        )
        grant = arbiter.rebalance(0, {})
        assert grant.group_pools_w["prod"] == pytest.approx(80.0)
        assert grant.group_pools_w["batch"] == pytest.approx(40.0)
        assert grant.caps_w["p0"] == pytest.approx(40.0)
        assert grant.caps_w["b0"] == pytest.approx(20.0)


class TestInvariant:
    def test_caps_sum_exactly_at_most_budget(self):
        # a budget that doesn't divide evenly exercises the trim
        arbiter = make_arbiter(
            node("a"), node("b"), node("c"), budget=70.000000123
        )
        grant = arbiter.rebalance(0, {})
        assert grant.total_w <= 70.000000123
        arbiter.check_invariant()

    def test_check_invariant_raises_on_violation(self):
        arbiter = make_arbiter(node("a"))
        arbiter.rebalance(0, {})
        arbiter._caps["a"] = 1000.0
        arbiter._cap_sum = 1000.0
        with pytest.raises(ConfigError, match="invariant"):
            arbiter.check_invariant()

    def test_full_check_catches_out_of_band_cap_edits(self):
        # the O(1) check reads the maintained sum; full=True rescans
        # and flags accounting drift from caps edited behind its back
        arbiter = make_arbiter(node("a"))
        arbiter.rebalance(0, {})
        arbiter._caps["a"] = 1000.0
        arbiter.check_invariant()  # maintained sum unaware: passes
        with pytest.raises(ConfigError, match="drift"):
            arbiter.check_invariant(full=True)

    def test_check_invariant_is_constant_time(self):
        # regression guard for the fleet-scale cost bound: the default
        # check must not rescan the caps dict
        arbiter = make_arbiter(node("a"), node("b"))
        arbiter.rebalance(0, {})

        class ExplodingDict(dict):
            def values(self):
                raise AssertionError("check_invariant rescanned caps")

        arbiter._caps = ExplodingDict(arbiter._caps)
        arbiter.check_invariant()  # O(1): never touches values()
        with pytest.raises(AssertionError):
            arbiter.check_invariant(full=True)

    def test_retire_removes_cap_and_history(self):
        arbiter = make_arbiter(node("a"), node("b"))
        arbiter.rebalance(0, {})
        arbiter.retire(["a"])
        assert "a" not in arbiter.caps()
        assert arbiter.members == ("b",)


class TestSilentMembers:
    """Lease-mirroring: silent nodes' budget is reserved, not re-bid."""

    def run_two_epochs(self, arbiter):
        arbiter.rebalance(0, {})
        return arbiter.rebalance(1, {
            "a": report("a", epoch=0, power=30.0, pressure=0.8),
            "b": report("b", epoch=0, power=30.0, pressure=0.8),
        })

    def test_silent_node_reserved_at_last_cap(self):
        arbiter = make_arbiter(node("a"), node("b"))
        before = self.run_two_epochs(arbiter)
        grant = arbiter.rebalance(2, {
            "a": report("a", epoch=1, power=30.0, pressure=0.8),
        })
        assert grant.reserved_w == {"b": pytest.approx(before.caps_w["b"])}
        assert grant.caps_w["b"] == pytest.approx(before.caps_w["b"])
        assert "b" in grant.degraded

    def test_reservation_expires_to_floor_after_ttl(self):
        arbiter = make_arbiter(node("a"), node("b"))
        self.run_two_epochs(arbiter)
        ttl = arbiter.lease_ttl
        grant = None
        for epoch in range(2, 2 + ttl + 1):
            grant = arbiter.rebalance(epoch, {
                "a": report("a", epoch=epoch - 1, power=30.0, pressure=0.8),
            })
        assert grant.reserved_w["b"] == pytest.approx(10.0)  # the floor
        assert grant.caps_w["b"] == pytest.approx(10.0)

    def test_reserved_watts_never_rebid_to_live_nodes(self):
        arbiter = make_arbiter(node("a"), node("b"))
        self.run_two_epochs(arbiter)
        grant = arbiter.rebalance(2, {
            "a": report("a", epoch=1, power=59.0, pressure=1.0),
        })
        # a wants everything, but b's reservation is off the table
        assert grant.caps_w["a"] + grant.caps_w["b"] <= 75.0 + 1e-9
        assert grant.caps_w["a"] <= 75.0 - grant.reserved_w["b"] + 1e-9

    def test_invariant_holds_with_reservations(self):
        arbiter = make_arbiter(node("a"), node("b"))
        self.run_two_epochs(arbiter)
        for epoch in range(2, 8):
            arbiter.rebalance(epoch, {
                "a": report("a", epoch=epoch - 1, power=59.0, pressure=1.0),
            })
            arbiter.check_invariant()

    def test_silence_then_return_restores_full_claim(self):
        arbiter = make_arbiter(node("a"), node("b"))
        self.run_two_epochs(arbiter)
        for epoch in range(2, 6):
            arbiter.rebalance(epoch, {
                "a": report("a", epoch=epoch - 1, power=30.0, pressure=0.8),
            })
        grant = arbiter.rebalance(6, {
            "a": report("a", epoch=5, power=30.0, pressure=0.8),
            "b": report("b", epoch=5, power=9.9, pressure=0.9, cap=10.0),
        })
        assert "b" not in grant.degraded
        assert grant.reserved_w == {}
        assert grant.caps_w["b"] > 10.0  # bidding again, above the floor


class TestDemandAging:
    def test_first_stale_epoch_keeps_full_holdover(self):
        arbiter = make_arbiter(node("a"), node("b"))
        arbiter.rebalance(0, {})
        held = arbiter.rebalance(1, {
            "a": report("a", epoch=0, power=20.0, pressure=0.0),
            "b": report("b", epoch=0, power=30.0, pressure=0.8),
        })
        grant = arbiter.rebalance(2, {
            "a": report("a", epoch=1, power=0.0, samples=0),
            "b": report("b", epoch=1, power=30.0, pressure=0.8),
        })
        assert grant.caps_w["a"] == pytest.approx(held.caps_w["a"], abs=1.0)

    def test_stale_demand_decays_to_floor_over_ttl(self):
        arbiter = make_arbiter(node("a"), node("b"))
        arbiter.rebalance(0, {})
        arbiter.rebalance(1, {
            "a": report("a", epoch=0, power=20.0, pressure=0.0),
            "b": report("b", epoch=0, power=30.0, pressure=0.8),
        })
        ttl = arbiter.lease_ttl
        caps = []
        for epoch in range(2, 3 + ttl):
            grant = arbiter.rebalance(epoch, {
                "a": report("a", epoch=epoch - 1, power=0.0, samples=0),
                "b": report("b", epoch=epoch - 1, power=30.0, pressure=0.8),
            })
            caps.append(grant.caps_w["a"])
        # monotone decay down to the floor once the holdover has aged out
        assert all(b <= a + 1e-9 for a, b in zip(caps, caps[1:]))
        assert caps[-1] == pytest.approx(10.0)

    def test_empty_reports_with_no_history_marked_degraded(self):
        # the holdover gap: samples == 0 and no prior _last_report must
        # be surfaced as a degraded grant, not pass silently
        arbiter = make_arbiter(node("a"), node("b"))
        arbiter.rebalance(0, {})
        grant = arbiter.rebalance(1, {
            "a": report("a", epoch=0, power=0.0, samples=0),
            "b": report("b", epoch=0, power=30.0, pressure=0.8),
        })
        assert "a" in grant.degraded
        assert "b" not in grant.degraded


class TestReservationFeasibility:
    def test_reservations_shaved_when_floors_would_not_fit(self):
        # three nodes nearly fill the budget; two go silent holding
        # large caps while the third still needs its floor
        arbiter = make_arbiter(
            node("a"), node("b"), node("c"), budget=90.0
        )
        arbiter.rebalance(0, {})
        arbiter.rebalance(1, {
            name: report(name, epoch=0, power=29.0, pressure=1.0)
            for name in ("a", "b", "c")
        })
        grant = arbiter.rebalance(2, {
            "a": report("a", epoch=1, power=29.0, pressure=1.0),
        })
        arbiter.check_invariant()
        assert grant.total_w <= 90.0 + 1e-9
        assert all(cap >= 10.0 - 1e-9 for cap in grant.caps_w.values())


class TestJoinGrace:
    def test_admitted_but_silent_node_floored_after_ttl(self):
        arbiter = make_arbiter(node("a"), node("b"))
        ttl = arbiter.lease_ttl
        grant = None
        for epoch in range(ttl + 2):
            grant = arbiter.rebalance(epoch, {
                "a": report("a", epoch=epoch - 1, power=30.0, pressure=0.8),
            } if epoch else {})
        # b never reported: its join grace has lapsed to a floor
        # reservation and it is flagged degraded
        assert grant.caps_w["b"] == pytest.approx(10.0)
        assert grant.reserved_w["b"] == pytest.approx(10.0)
        assert "b" in grant.degraded
