"""Tests for min-funding revocation distribution."""

import pytest

from repro.core.minfund import (
    Claim,
    distribute_min_funding,
    pool_bounds,
    proportional_targets,
    refill_pool,
)
from repro.errors import ShareError


def claim(label, shares, current=0.0, lo=0.0, hi=100.0):
    return Claim(label, shares, current, lo, hi)


class TestClaim:
    def test_nonpositive_shares_rejected(self):
        with pytest.raises(ShareError):
            claim("a", 0)

    def test_empty_range_rejected(self):
        with pytest.raises(ShareError):
            Claim("a", 1, 0, 10, 5)


class TestDistribute:
    def test_share_proportional_split(self):
        out = distribute_min_funding(40.0, [claim("a", 3), claim("b", 1)])
        assert out["a"] == pytest.approx(30.0)
        assert out["b"] == pytest.approx(10.0)

    def test_negative_delta(self):
        claims = [claim("a", 1, current=50.0), claim("b", 1, current=50.0)]
        out = distribute_min_funding(-20.0, claims)
        assert out["a"] == pytest.approx(40.0)
        assert out["b"] == pytest.approx(40.0)

    def test_excess_flows_past_saturated(self):
        claims = [claim("a", 1, hi=5.0), claim("b", 1, hi=100.0)]
        out = distribute_min_funding(40.0, claims)
        assert out["a"] == 5.0
        assert out["b"] == pytest.approx(35.0)

    def test_floor_respected_on_reduction(self):
        claims = [
            claim("a", 1, current=10.0, lo=8.0),
            claim("b", 1, current=10.0, lo=0.0),
        ]
        out = distribute_min_funding(-10.0, claims)
        assert out["a"] == pytest.approx(8.0)
        assert out["b"] == pytest.approx(2.0)

    def test_total_conserved_when_feasible(self):
        claims = [claim("a", 2, current=10.0), claim("b", 5, current=20.0)]
        out = distribute_min_funding(13.0, claims)
        assert sum(out.values()) == pytest.approx(43.0)

    def test_everything_saturated_places_what_it_can(self):
        claims = [claim("a", 1, current=9.0, hi=10.0)]
        out = distribute_min_funding(50.0, claims)
        assert out["a"] == 10.0

    def test_zero_delta_is_identity(self):
        claims = [claim("a", 1, current=7.0)]
        assert distribute_min_funding(0.0, claims) == {"a": 7.0}

    def test_empty_claims(self):
        assert distribute_min_funding(10.0, []) == {}

    def test_terminates_on_degenerate_bounds(self):
        claims = [Claim("a", 1, 5.0, 5.0, 5.0), Claim("b", 1, 5.0, 5.0, 5.0)]
        out = distribute_min_funding(10.0, claims)
        assert out == {"a": 5.0, "b": 5.0}


class TestProportionalTargets:
    def test_splits_total(self):
        out = proportional_targets(
            100.0, [claim("a", 1), claim("b", 4)]
        )
        assert out["a"] == pytest.approx(20.0)
        assert out["b"] == pytest.approx(80.0)

    def test_floors_always_met(self):
        out = proportional_targets(
            10.0, [claim("a", 1, lo=8.0), claim("b", 99, lo=8.0, hi=10.0)]
        )
        assert out["a"] >= 8.0
        assert out["b"] >= 8.0

    def test_ignores_current(self):
        out = proportional_targets(
            10.0, [claim("a", 1, current=999.0), claim("b", 1)]
        )
        assert out["a"] == pytest.approx(5.0)


class TestPool:
    def test_pool_bounds(self):
        claims = [claim("a", 1, lo=2.0, hi=10.0), claim("b", 1, lo=3.0, hi=5.0)]
        assert pool_bounds(claims) == (5.0, 15.0)

    def test_refill_reclaims_windfall_first(self):
        """An app that got excess because others saturated gives the
        excess back before proportional entitlements shrink."""
        claims = [
            claim("big", 90, current=50.0, hi=50.0),
            claim("small", 10, current=40.0, hi=100.0),  # windfall
        ]
        out = refill_pool(80.0, claims)
        # entitlement at pool 80: big 72 (clamped 50), small 8 + spill 22
        assert out["big"] == pytest.approx(50.0)
        assert out["small"] == pytest.approx(30.0)

    def test_refill_preserves_pure_proportions(self):
        claims = [claim("a", 3, current=30.0), claim("b", 1, current=10.0)]
        out = refill_pool(20.0, claims)
        assert out["a"] == pytest.approx(15.0)
        assert out["b"] == pytest.approx(5.0)
