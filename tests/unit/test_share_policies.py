"""Unit tests for the three proportional-share policies (no simulator:
telemetry is hand-fed, which pins down each policy's control contract)."""

import pytest

from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.performance_shares import PerformanceSharesPolicy
from repro.core.power_shares import PowerSharesPolicy
from repro.core.types import AppTelemetry, ManagedApp, PolicyInputs
from repro.errors import ConfigError, UnsupportedFeatureError


def apps_pair(platform, ld_shares=90.0, hd_shares=10.0, baseline=None):
    return [
        ManagedApp(label="ld", core_id=0, shares=ld_shares,
                   baseline_ips=baseline),
        ManagedApp(label="hd", core_id=1, shares=hd_shares,
                   baseline_ips=baseline),
    ]


def inputs_for(policy, package_w, telem=None, iteration=1):
    telem = telem or {}
    apps = []
    for app in policy.apps:
        freq, ips, power = telem.get(app.label, (1000.0, 1e9, 3.0))
        apps.append(
            AppTelemetry(
                label=app.label,
                active_frequency_mhz=freq,
                ips=ips,
                busy_fraction=1.0,
                power_w=power,
                parked=False,
            )
        )
    return PolicyInputs(
        iteration=iteration,
        limit_w=policy.limit_w,
        package_power_w=package_w,
        apps=tuple(apps),
        current_targets={},
    )


class TestFrequencyShares:
    def test_initial_top_share_at_max(self, skylake):
        policy = FrequencySharesPolicy(skylake, apps_pair(skylake), 50.0)
        decision = policy.initial_distribution()
        assert decision.targets["ld"] == skylake.max_frequency_mhz

    def test_initial_proportions(self, skylake):
        policy = FrequencySharesPolicy(
            skylake, apps_pair(skylake, 100, 50), 50.0
        )
        decision = policy.initial_distribution()
        assert decision.targets["hd"] == pytest.approx(
            decision.targets["ld"] / 2
        )

    def test_initial_respects_floor(self, skylake):
        policy = FrequencySharesPolicy(
            skylake, apps_pair(skylake, 99, 1), 50.0
        )
        decision = policy.initial_distribution()
        assert decision.targets["hd"] == skylake.min_frequency_mhz

    def test_over_limit_reduces_targets(self, skylake):
        policy = FrequencySharesPolicy(skylake, apps_pair(skylake), 50.0)
        before = policy.initial_distribution().targets
        after = policy.redistribute(inputs_for(policy, 60.0)).targets
        assert after["ld"] < before["ld"]

    def test_in_deadband_holds(self, skylake):
        policy = FrequencySharesPolicy(skylake, apps_pair(skylake), 50.0)
        before = policy.initial_distribution().targets
        after = policy.redistribute(inputs_for(policy, 50.2)).targets
        assert after == before

    def test_ratio_preserved_without_clamps(self, skylake):
        policy = FrequencySharesPolicy(
            skylake, apps_pair(skylake, 60, 40), 50.0
        )
        policy.initial_distribution()
        decision = policy.redistribute(inputs_for(policy, 58.0))
        assert decision.targets["ld"] / decision.targets["hd"] == (
            pytest.approx(1.5, rel=0.01)
        )

    def test_never_starves(self, skylake):
        policy = FrequencySharesPolicy(skylake, apps_pair(skylake), 50.0)
        policy.initial_distribution()
        for _ in range(30):
            decision = policy.redistribute(inputs_for(policy, 80.0))
        assert decision.parked == set()
        assert all(
            f >= skylake.min_frequency_mhz
            for f in decision.targets.values()
        )


class TestPerformanceShares:
    def test_requires_baseline(self, skylake):
        with pytest.raises(ConfigError):
            PerformanceSharesPolicy(skylake, apps_pair(skylake), 50.0)

    def test_initial_distribution_proportional(self, skylake):
        policy = PerformanceSharesPolicy(
            skylake, apps_pair(skylake, 60, 40, baseline=1e9), 50.0
        )
        decision = policy.initial_distribution()
        assert decision.targets["ld"] > decision.targets["hd"]

    def test_translation_raises_freq_when_below_target(self, skylake):
        policy = PerformanceSharesPolicy(
            skylake, apps_pair(skylake, 50, 50, baseline=1e9), 50.0
        )
        first = policy.initial_distribution().targets
        # both measured far below their perf targets, power under limit
        telem = {
            "ld": (first["ld"], 0.05e9, None),
            "hd": (first["hd"], 0.05e9, None),
        }
        decision = policy.redistribute(inputs_for(policy, 30.0, telem))
        assert decision.targets["ld"] > first["ld"]

    def test_translation_step_bounded(self, skylake):
        policy = PerformanceSharesPolicy(
            skylake, apps_pair(skylake, 50, 50, baseline=1e9), 50.0
        )
        first = policy.initial_distribution().targets
        telem = {
            "ld": (first["ld"], 1e3, None),  # absurdly low measurement
            "hd": (first["hd"], 1e3, None),
        }
        decision = policy.redistribute(inputs_for(policy, 50.0, telem))
        assert decision.targets["ld"] <= first["ld"] * policy.max_step_up

    def test_insensitive_app_not_cut_under_headroom(self, skylake):
        policy = PerformanceSharesPolicy(
            skylake, apps_pair(skylake, 50, 50, baseline=1e9), 50.0
        )
        policy.initial_distribution()
        # iteration 1: running fast, measured high -> policy wants cuts
        telem = {"ld": (2800.0, 0.9e9, None), "hd": (2800.0, 0.9e9, None)}
        d1 = policy.redistribute(inputs_for(policy, 30.0, telem, iteration=1))
        # iteration 2: frequency fell >3% but perf barely moved
        telem = {"ld": (2300.0, 0.89e9, None), "hd": (2300.0, 0.89e9, None)}
        d2 = policy.redistribute(inputs_for(policy, 30.0, telem, iteration=2))
        # iteration 3: cuts are frozen despite measured > target
        telem = {"ld": (2300.0, 0.89e9, None), "hd": (2300.0, 0.89e9, None)}
        d3 = policy.redistribute(inputs_for(policy, 30.0, telem, iteration=3))
        assert d3.targets["ld"] >= d2.targets["ld"] * 0.999

    def test_over_limit_overrides_freeze(self, skylake):
        policy = PerformanceSharesPolicy(
            skylake, apps_pair(skylake, 50, 50, baseline=1e9), 50.0
        )
        policy.initial_distribution()
        telem = {"ld": (2800.0, 0.9e9, None), "hd": (2800.0, 0.9e9, None)}
        policy.redistribute(inputs_for(policy, 45.0, telem, iteration=1))
        telem = {"ld": (2300.0, 0.89e9, None), "hd": (2300.0, 0.89e9, None)}
        d2 = policy.redistribute(inputs_for(policy, 45.0, telem, iteration=2))
        # now way over the limit: the freeze must not hold
        d3 = policy.redistribute(inputs_for(policy, 70.0, telem, iteration=3))
        assert d3.targets["ld"] < d2.targets["ld"]


class TestPowerShares:
    def test_requires_per_core_energy(self, skylake):
        with pytest.raises(UnsupportedFeatureError):
            PowerSharesPolicy(skylake, apps_pair(skylake), 50.0)

    def test_initial_limits_proportional(self, ryzen):
        # budget small enough that neither app hits the per-core model cap
        policy = PowerSharesPolicy(ryzen, apps_pair(ryzen, 60, 40), 20.0)
        policy.initial_distribution()
        limits = policy._power_limits
        assert limits["ld"] / limits["hd"] == pytest.approx(1.5, rel=0.05)

    def test_big_budget_saturates_at_model_cap(self, ryzen):
        policy = PowerSharesPolicy(ryzen, apps_pair(ryzen, 60, 40), 40.0)
        policy.initial_distribution()
        limits = policy._power_limits
        assert limits["ld"] == policy.model_max_w
        assert limits["hd"] == policy.model_max_w

    def test_local_feedback_raises_underdrawing_core(self, ryzen):
        policy = PowerSharesPolicy(ryzen, apps_pair(ryzen, 50, 50), 20.0)
        first = policy.initial_distribution().targets
        telem = {
            "ld": (first["ld"], 1e9, 0.5),   # far below its power limit
            "hd": (first["hd"], 1e9, 20.0),  # far above
        }
        decision = policy.redistribute(inputs_for(policy, 19.9, telem))
        assert decision.targets["ld"] > first["ld"]
        assert decision.targets["hd"] < first["hd"]

    def test_budget_excludes_uncore_estimate(self, ryzen):
        policy = PowerSharesPolicy(ryzen, apps_pair(ryzen), 40.0)
        assert policy.core_budget_w == pytest.approx(
            40.0 - policy.config.uncore_estimate_w
        )
