"""Unit tests for the untrusted-telemetry defense layer.

:mod:`repro.cluster.trust` in isolation: the demand validator's model
envelope (seeding, clamping, consistency, staleness), the exactness of
the vectorized screen against per-report validation on adversarial
batches, trust decay/probation/recovery and the documented quarantine
bound, and the brownout ladder's hysteresis and shedding order.
"""

import math
import random

import pytest

from repro.cluster.node import NodeEpochReport
from repro.cluster.trust import (
    BOOT_FLOOR_FACTOR,
    BROWNOUT_ENTER_EPOCHS,
    BROWNOUT_EXIT_EPOCHS,
    BROWNOUT_FLOOR_FRACTION,
    BROWNOUT_LEVELS,
    BrownoutController,
    CAP_OVERAGE,
    DemandValidator,
    PLATFORM_MARGIN,
    QUARANTINE_THRESHOLD,
    RATE_GROWTH,
    TRUST_DECAY,
    TRUST_PROBATION_EPOCHS,
    TRUST_RECOVERY,
    TrustBook,
    brownout_claim_bounds,
)

FLOOR_W = 12.0
MAX_CAP_W = 95.0


def report(
    name="n0",
    epoch=1,
    cap_w=45.0,
    power=30.0,
    throttle=0.2,
    headroom=None,
    samples=10,
):
    if headroom is None:
        headroom = max(cap_w - power, 0.0)
    return NodeEpochReport(
        name=name,
        epoch=epoch,
        t_end_s=epoch * 10.0,
        cap_w=cap_w,
        mean_power_w=power,
        throttle_pressure=throttle,
        headroom_w=headroom,
        parked_cores=0,
        quarantined_cores=0,
        samples=samples,
    )


def validate(validator, rep, *, epoch=None, granted=45.0):
    return validator.validate(
        rep,
        epoch=rep.epoch if epoch is None else epoch,
        floor_w=FLOOR_W,
        max_cap_w=MAX_CAP_W,
        granted_w=granted,
    )


class TestDemandValidator:
    def test_clean_report_passes_byte_identical(self):
        v = DemandValidator(3)
        rep = report()
        checked, broken = validate(v, rep)
        assert broken == ()
        assert checked == rep
        assert v.clean_tuples["n0"] == (30.0, 0.2, 15.0, 45.0)

    def test_first_report_held_only_to_platform_bound(self):
        # boot overshoot above the granted cap is plausible; above the
        # platform envelope is not.
        v = DemandValidator(3)
        hot = report(power=MAX_CAP_W * PLATFORM_MARGIN - 1.0,
                     cap_w=MAX_CAP_W)
        _, broken = validate(v, hot, granted=None)
        assert broken == ()
        v2 = DemandValidator(3)
        impossible = report(power=MAX_CAP_W * PLATFORM_MARGIN + 5.0)
        checked, broken = validate(v2, impossible, granted=None)
        assert "exceeds-platform" in broken
        assert checked.mean_power_w <= MAX_CAP_W * PLATFORM_MARGIN

    def test_rate_limit_engages_after_seeding(self):
        v = DemandValidator(3)
        validate(v, report(epoch=1, power=30.0))
        jump = report(epoch=2, power=80.0, cap_w=45.0)
        checked, broken = validate(v, jump)
        assert "implausible-demand" in broken
        ceiling = max(
            45.0 * CAP_OVERAGE,
            FLOOR_W * BOOT_FLOOR_FACTOR,
            30.0 * RATE_GROWTH,
        )
        assert checked.mean_power_w == pytest.approx(ceiling)

    def test_throttle_range_clamped(self):
        v = DemandValidator(3)
        checked, broken = validate(v, report(throttle=1.7))
        assert "throttle-range" in broken
        assert checked.throttle_pressure == 1.0

    def test_inconsistent_headroom_flagged(self):
        v = DemandValidator(3)
        _, broken = validate(v, report(power=30.0, headroom=40.0))
        assert "inconsistent-headroom" in broken

    def test_non_finite_falls_back_to_last_accepted(self):
        v = DemandValidator(3)
        validate(v, report(epoch=1, power=30.0))
        checked, broken = validate(
            v, report(epoch=2, power=math.nan, headroom=math.nan)
        )
        assert "non-finite" in broken
        assert checked.mean_power_w == 30.0
        assert math.isfinite(checked.headroom_w)

    def test_stale_payload_flagged_past_ttl(self):
        v = DemandValidator(3)
        _, broken = validate(v, report(epoch=1), epoch=5)
        assert "stale-payload" in broken
        v2 = DemandValidator(3)
        _, broken = validate(v2, report(epoch=2), epoch=5)
        assert broken == ()

    def test_violation_evicts_clean_tuple(self):
        v = DemandValidator(3)
        validate(v, report(epoch=1))
        assert "n0" in v.clean_tuples
        validate(v, report(epoch=2, throttle=2.0))
        assert "n0" not in v.clean_tuples

    def test_restore_drops_cache_but_keeps_anchors(self):
        v = DemandValidator(3)
        validate(v, report(epoch=1, power=30.0))
        state = v.snapshot()
        fresh = DemandValidator(3)
        fresh.restore(state)
        assert fresh.clean_tuples == {}
        # the anchor survives: the rate limit still binds
        _, broken = validate(fresh, report(epoch=2, power=80.0))
        assert "implausible-demand" in broken


def _adversarial_report(rng, name, epoch):
    power = rng.choice(
        [
            rng.uniform(5.0, 90.0),
            rng.uniform(90.0, 400.0),
            -rng.uniform(0.0, 20.0),
            math.nan,
            math.inf,
        ]
    )
    cap = rng.choice(
        [rng.uniform(10.0, 95.0), rng.uniform(95.0, 300.0), -5.0]
    )
    throttle = rng.choice(
        [rng.uniform(0.0, 1.0), 1.5, -0.2, math.nan]
    )
    headroom = rng.choice(
        [
            max(cap - power, 0.0)
            if math.isfinite(cap - power)
            else 0.0,
            rng.uniform(0.0, 50.0),
            math.nan,
        ]
    )
    return report(
        name=name,
        epoch=rng.choice([epoch, epoch, epoch, epoch - 5]),
        cap_w=cap,
        power=power,
        throttle=throttle,
        headroom=headroom,
    )


class TestScreenEquivalence:
    """The screen's promise: screening is *exactly* per-report
    validation — verdicts, clamped reports, validator state, and trust
    state all byte-identical on adversarial batches."""

    @pytest.mark.parametrize("seed", [0xBEEF, 7, 2026])
    def test_screen_plus_validate_matches_validate_all(self, seed):
        rng = random.Random(seed)
        n_nodes, n_epochs = 150, 10
        names = [f"n{i:04d}" for i in range(n_nodes)]
        floors = {n: FLOOR_W for n in names}
        maxes = {n: MAX_CAP_W for n in names}
        screened = DemandValidator(3)
        reference = DemandValidator(3)
        trust_a, trust_b = TrustBook(), TrustBook()

        for epoch in range(n_epochs):
            granted = {n: rng.uniform(10.0, 90.0) for n in names}
            reports = []
            for name in names:
                if (
                    epoch > 0
                    and rng.random() < 0.7
                    and name in screened.clean_tuples
                ):
                    # a settled node repeating its last clean reading
                    t = screened.clean_tuples[name]
                    reports.append(
                        report(
                            name=name,
                            epoch=epoch,
                            cap_w=t[3],
                            power=t[0],
                            throttle=t[1],
                            headroom=t[2],
                        )
                    )
                else:
                    reports.append(
                        _adversarial_report(rng, name, epoch)
                    )

            # path A: screen, then validate only the residue
            outs_a = list(reports)
            viols_a = {}
            residue = screened.screen(
                reports,
                names,
                epoch=epoch,
                floors=floors,
                maxes=maxes,
                granted=granted,
            )
            for i in residue:
                checked, broken = screened.validate(
                    reports[i],
                    epoch=epoch,
                    floor_w=floors[names[i]],
                    max_cap_w=maxes[names[i]],
                    granted_w=granted.get(names[i]),
                )
                trust_a.observe(names[i], bool(broken))
                if broken:
                    viols_a[names[i]] = broken
                outs_a[i] = checked
            trust_a.observe_clean(
                names, skip={names[i] for i in residue}
            )

            # path B: validate every report individually
            outs_b = []
            viols_b = {}
            for rep in reports:
                checked, broken = reference.validate(
                    rep,
                    epoch=epoch,
                    floor_w=floors[rep.name],
                    max_cap_w=maxes[rep.name],
                    granted_w=granted.get(rep.name),
                )
                trust_b.observe(rep.name, bool(broken))
                outs_b.append(checked)
                if broken:
                    viols_b[rep.name] = broken

            assert viols_a == viols_b
            for a, b in zip(outs_a, outs_b):
                assert _reports_equal(a, b), (epoch, a, b)
            assert screened.snapshot() == reference.snapshot()
            assert trust_a.snapshot() == trust_b.snapshot()


def _reports_equal(a, b):
    if a == b:
        return True
    if a.name != b.name:
        return False
    # NaN-tolerant channel comparison (NaN != NaN under ==)
    for x, y in (
        (a.mean_power_w, b.mean_power_w),
        (a.throttle_pressure, b.throttle_pressure),
        (a.headroom_w, b.headroom_w),
    ):
        if not ((x != x and y != y) or x == y):
            return False
    return True


class TestTrustBook:
    def test_quarantine_within_two_violating_epochs(self):
        # the documented bound: decay 0.5 against threshold 0.3
        book = TrustBook()
        book.observe("liar", True)
        assert not book.quarantined("liar")
        book.observe("liar", True)
        assert book.quarantined("liar")
        assert book.score("liar") == TRUST_DECAY * TRUST_DECAY
        assert book.quarantined_names() == ("liar",)

    def test_probation_delays_recovery(self):
        book = TrustBook()
        book.observe("n", True)
        for _ in range(TRUST_PROBATION_EPOCHS):
            book.observe("n", False)
        assert book.score("n") == TRUST_DECAY  # still on probation
        book.observe("n", False)
        assert book.score("n") == pytest.approx(
            TRUST_DECAY + TRUST_RECOVERY
        )

    def test_full_recovery_forgets_the_node(self):
        book = TrustBook()
        book.observe("n", True)
        for _ in range(30):
            book.observe("n", False)
        assert book.score("n") == 1.0
        assert not book.scores  # indistinguishable from never-violated

    def test_violation_resets_the_streak(self):
        book = TrustBook()
        book.observe("n", True)
        book.observe("n", False)
        book.observe("n", True)
        for _ in range(TRUST_PROBATION_EPOCHS):
            book.observe("n", False)
        assert book.score("n") == TRUST_DECAY * TRUST_DECAY

    def test_observe_clean_honors_skip_set(self):
        book = TrustBook()
        book.observe("a", True)
        book.observe("b", True)
        for _ in range(TRUST_PROBATION_EPOCHS + 1):
            book.observe_clean(["a", "b"], skip={"b"})
        assert book.score("a") > TRUST_DECAY
        assert book.score("b") == TRUST_DECAY

    def test_discount_hi_full_trust_is_identity(self):
        book = TrustBook()
        assert book.discount_hi("n", 12.0, 40.0) == 40.0

    def test_discount_hi_interpolates_and_quarantines(self):
        book = TrustBook()
        book.observe("n", True)  # score 0.5
        assert book.discount_hi("n", 12.0, 40.0) == pytest.approx(
            12.0 + 28.0 * TRUST_DECAY
        )
        book.observe("n", True)  # below the threshold
        assert book.score("n") < QUARANTINE_THRESHOLD
        assert book.discount_hi("n", 12.0, 40.0) == 12.0

    def test_snapshot_roundtrip(self):
        book = TrustBook()
        book.observe("a", True)
        book.observe("a", False)
        clone = TrustBook()
        clone.restore(book.snapshot())
        assert clone.snapshot() == book.snapshot()
        assert clone.score("a") == book.score("a")


class TestBrownoutLadder:
    def test_steps_up_after_sustained_overload(self):
        ladder = BrownoutController()
        for i in range(BROWNOUT_ENTER_EPOCHS - 1):
            assert ladder.observe(110.0, 100.0) == 0
        assert ladder.observe(110.0, 100.0) == 1
        assert ladder.level_name == "brownout1"

    def test_single_spike_does_not_step(self):
        ladder = BrownoutController()
        ladder.observe(110.0, 100.0)
        ladder.observe(90.0, 100.0)  # calm resets the over-streak
        ladder.observe(110.0, 100.0)
        assert ladder.level == 0

    def test_exit_needs_longer_calm_run(self):
        ladder = BrownoutController()
        for _ in range(BROWNOUT_ENTER_EPOCHS):
            ladder.observe(110.0, 100.0)
        assert ladder.level == 1
        for _ in range(BROWNOUT_EXIT_EPOCHS - 1):
            assert ladder.observe(90.0, 100.0) == 1
        assert ladder.observe(90.0, 100.0) == 0

    def test_hysteresis_band_holds_level(self):
        ladder = BrownoutController()
        for _ in range(BROWNOUT_ENTER_EPOCHS):
            ladder.observe(110.0, 100.0)
        # between exit (1.0) and enter (1.02) ratios: hold forever
        for _ in range(20):
            assert ladder.observe(101.0, 100.0) == 1

    def test_ladder_saturates_at_shed(self):
        ladder = BrownoutController()
        for _ in range(10 * BROWNOUT_ENTER_EPOCHS):
            ladder.observe(200.0, 100.0)
        assert ladder.level == len(BROWNOUT_LEVELS) - 1
        assert ladder.level_name == "shed"

    def test_snapshot_roundtrip(self):
        ladder = BrownoutController()
        ladder.observe(110.0, 100.0)
        clone = BrownoutController()
        clone.restore(ladder.snapshot())
        assert clone.snapshot() == ladder.snapshot()
        # the cloned streak continues where the original left off
        assert clone.observe(110.0, 100.0) == 1


class TestBrownoutClaimBounds:
    FLOOR, SHARES, TOP = 12.0, 1.0, 2.0

    def bounds(self, level, *, hi, shares=None):
        return brownout_claim_bounds(
            level,
            floor_w=self.FLOOR,
            raw_hi_w=hi,
            shares=self.SHARES if shares is None else shares,
            top_shares=self.TOP,
        )

    def test_level0_is_identity(self):
        assert self.bounds(0, hi=40.0) == (12.0, 40.0)
        assert self.bounds(0, hi=5.0) == (12.0, 12.0)

    def test_level1_collapses_idle_floors(self):
        # a node demanding below its floor loses the full-floor hold
        lo, hi = self.bounds(1, hi=8.0)
        assert (lo, hi) == (8.0, 8.0)
        # but never below the idle fraction of the floor
        lo, _ = self.bounds(1, hi=1.0)
        assert lo == BROWNOUT_FLOOR_FRACTION * self.FLOOR
        # busy nodes keep their full floor
        assert self.bounds(1, hi=40.0) == (12.0, 40.0)

    def test_level2_pins_best_effort_at_floor(self):
        assert self.bounds(2, hi=40.0) == (12.0, 12.0)
        # top-share nodes still grow
        assert self.bounds(2, hi=40.0, shares=self.TOP) == (12.0, 40.0)

    def test_level3_sheds_best_effort_floors(self):
        lo, hi = self.bounds(3, hi=40.0)
        assert lo == hi == BROWNOUT_FLOOR_FRACTION * self.FLOOR
        # even top-share nodes are pinned at their floors
        assert self.bounds(3, hi=40.0, shares=self.TOP) == (12.0, 12.0)

    @pytest.mark.parametrize("level", range(len(BROWNOUT_LEVELS)))
    def test_lo_never_exceeds_hi(self, level):
        for hi in (0.0, 1.0, 8.0, 12.0, 40.0):
            for shares in (1.0, 2.0):
                lo, cap_hi = self.bounds(level, hi=hi, shares=shares)
                assert lo <= cap_hi
