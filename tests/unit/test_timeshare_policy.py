"""Tests for the single-core sharing policy (paper section 4.3 cases)."""

import pytest

from repro.core.timeshare_policy import (
    SingleCoreApp,
    plan_single_core,
)
from repro.core.types import Priority
from repro.errors import ConfigError


def app(label, demand, shares=1.0, priority=Priority.HIGH, power=10.0):
    return SingleCoreApp(
        label=label, demand=demand, shares=shares,
        priority=priority, power_at_max_w=power,
    )


class TestValidation:
    def test_needs_two_apps(self, ryzen):
        with pytest.raises(ConfigError):
            plan_single_core(ryzen, [app("a", 1.0)], 10.0)

    def test_needs_positive_budget(self, ryzen):
        with pytest.raises(ConfigError):
            plan_single_core(ryzen, [app("a", 1.0), app("b", 1.0)], 0.0)

    def test_bad_app_spec(self):
        with pytest.raises(ConfigError):
            SingleCoreApp("x", 0.0, 1.0, Priority.HIGH, 10.0)


class TestCase1EqualDemand:
    def test_full_budget_runs_max(self, ryzen):
        plan = plan_single_core(
            ryzen, [app("a", 1.0, power=8.0), app("b", 1.05, power=8.0)],
            20.0,
        )
        assert plan.case == "equal-demand"
        assert plan.frequency_mhz == ryzen.max_frequency_mhz

    def test_limited_budget_throttles(self, ryzen):
        plan = plan_single_core(
            ryzen, [app("a", 1.0, power=10.0), app("b", 1.0, power=10.0)],
            4.0,
        )
        assert plan.frequency_mhz < ryzen.max_frequency_mhz

    def test_shares_passed_through(self, ryzen):
        plan = plan_single_core(
            ryzen, [app("a", 1.0, shares=3.0), app("b", 1.0, shares=1.0)],
            20.0,
        )
        assert plan.cpu_shares == {"a": 3.0, "b": 1.0}


class TestCase2MixedDemandEqualPriority:
    def test_ld_app_gets_compensating_runtime(self, ryzen):
        plan = plan_single_core(
            ryzen,
            [app("hd", 1.6, power=12.0), app("ld", 1.0, power=7.0)],
            5.0,
        )
        assert plan.case == "mixed-demand-equal-priority"
        # throttled core -> LD app's share boosted above its nominal 1.0
        assert plan.cpu_shares["ld"] > 1.0
        assert plan.cpu_shares["hd"] == 1.0

    def test_no_boost_without_throttling(self, ryzen):
        plan = plan_single_core(
            ryzen,
            [app("hd", 1.6, power=8.0), app("ld", 1.0, power=5.0)],
            20.0,
        )
        assert plan.cpu_shares["ld"] == pytest.approx(1.0)


class TestCase3MixedPriority:
    def test_ldhp_runs_max_hdlp_excluded(self, ryzen):
        plan = plan_single_core(
            ryzen,
            [
                app("ldhp", 1.0, priority=Priority.HIGH, power=6.0),
                app("hdlp", 1.8, priority=Priority.LOW, power=14.0),
            ],
            8.0,
        )
        assert plan.case == "mixed-demand-mixed-priority"
        assert plan.frequency_mhz >= ryzen.max_nominal_frequency_mhz
        assert "hdlp" in plan.excluded
        assert "hdlp" not in plan.cpu_shares

    def test_hdhp_drags_ldlp_down(self, ryzen):
        plan = plan_single_core(
            ryzen,
            [
                app("hdhp", 1.8, priority=Priority.HIGH, power=14.0),
                app("ldlp", 1.0, priority=Priority.LOW, power=6.0),
            ],
            7.0,
        )
        assert plan.frequency_mhz < ryzen.max_nominal_frequency_mhz
        assert plan.excluded == ()
        assert "ldlp" in plan.cpu_shares

    def test_affordable_lp_not_excluded(self, ryzen):
        plan = plan_single_core(
            ryzen,
            [
                app("ldhp", 1.0, priority=Priority.HIGH, power=6.0),
                app("lp", 1.4, priority=Priority.LOW, power=7.0),
            ],
            8.0,
        )
        assert plan.excluded == ()
