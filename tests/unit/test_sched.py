"""Tests for pinning and single-core time sharing."""

import pytest

from repro.errors import SchedulerError, ShareError
from repro.sched.pinning import pin_apps
from repro.sched.timeshare import TimeShareEntry, TimeSharedCoreLoad
from repro.sim.chip import Chip
from repro.workloads.app import RunningApp
from repro.workloads.spec import spec_app


class TestPinning:
    def test_pins_in_order(self, sky_chip):
        placements = pin_apps(sky_chip, [spec_app("gcc"), spec_app("leela")])
        assert [p.core_id for p in placements] == [0, 1]

    def test_custom_core_ids(self, sky_chip):
        placements = pin_apps(
            sky_chip, [spec_app("gcc")], core_ids=[7]
        )
        assert placements[0].core_id == 7
        assert sky_chip.cores[7].load is placements[0].load

    def test_instances_numbered(self, sky_chip):
        placements = pin_apps(sky_chip, [spec_app("gcc")] * 3)
        assert [p.label for p in placements] == ["gcc#0", "gcc#1", "gcc#2"]

    def test_no_apps_rejected(self, sky_chip):
        with pytest.raises(SchedulerError):
            pin_apps(sky_chip, [])

    def test_too_many_apps_rejected(self, sky_chip):
        with pytest.raises(SchedulerError):
            pin_apps(sky_chip, [spec_app("gcc")] * 11)

    def test_duplicate_cores_rejected(self, sky_chip):
        with pytest.raises(SchedulerError):
            pin_apps(sky_chip, [spec_app("gcc")] * 2, core_ids=[1, 1])

    def test_mismatched_lengths_rejected(self, sky_chip):
        with pytest.raises(SchedulerError):
            pin_apps(sky_chip, [spec_app("gcc")] * 2, core_ids=[0])


def entry(name, shares, instance=0):
    return TimeShareEntry(
        app=RunningApp(spec_app(name, steady=True), instance=instance),
        shares=shares,
    )


class TestTimeShareGroup:
    def test_relative_shares_fill_core(self):
        load = TimeSharedCoreLoad([entry("gcc", 3), entry("leela", 1)], 3000.0)
        split = load.residencies()
        assert split["gcc#0"] == pytest.approx(0.75)
        assert split["leela#0"] == pytest.approx(0.25)

    def test_absolute_quotas_leave_idle(self):
        load = TimeSharedCoreLoad(
            [entry("gcc", 0.5), entry("leela", 0.2)], 3000.0,
            absolute_quotas=True,
        )
        sample = load.advance(1e-3, 3000.0, 0.0)
        assert sample.busy_fraction == pytest.approx(0.7)

    def test_absolute_quotas_over_100pct_rejected(self):
        with pytest.raises(ShareError):
            TimeSharedCoreLoad(
                [entry("gcc", 0.7), entry("leela", 0.5)], 3000.0,
                absolute_quotas=True,
            )

    def test_set_shares_runtime(self):
        load = TimeSharedCoreLoad([entry("gcc", 1), entry("leela", 1)], 3000.0)
        load.set_shares("gcc#0", 3.0)
        assert load.residencies()["gcc#0"] == pytest.approx(0.75)

    def test_set_shares_unknown_label(self):
        load = TimeSharedCoreLoad([entry("gcc", 1)], 3000.0)
        with pytest.raises(SchedulerError):
            load.set_shares("nosuch#0", 2.0)

    def test_set_shares_quota_overflow_rejected_and_rolled_back(self):
        load = TimeSharedCoreLoad(
            [entry("gcc", 0.5), entry("leela", 0.4)], 3000.0,
            absolute_quotas=True,
        )
        with pytest.raises(ShareError):
            load.set_shares("leela#0", 0.6)
        assert load.residencies()["leela#0"] == pytest.approx(0.4)

    def test_finished_app_releases_time(self):
        tiny = spec_app("leela").with_instructions(1e6)
        entries = [
            TimeShareEntry(app=RunningApp(tiny), shares=1),
            entry("gcc", 1),
        ]
        load = TimeSharedCoreLoad(entries, 3000.0)
        load.advance(1.0, 3000.0, 0.0)  # leela finishes
        split = load.residencies()
        assert split == {"gcc#0": 1.0}

    def test_done_only_when_all_finish(self):
        tiny = spec_app("leela").with_instructions(1e6)
        load = TimeSharedCoreLoad(
            [TimeShareEntry(app=RunningApp(tiny), shares=1)], 3000.0
        )
        sample = load.advance(1.0, 3000.0, 0.0)
        assert sample.done

    def test_instructions_split_by_share(self):
        load = TimeSharedCoreLoad([entry("gcc", 3), entry("leela", 1)], 3000.0)
        load.advance(1.0, 3000.0, 0.0)
        gcc = load.entries[0].app.retired_instructions
        leela = load.entries[1].app.retired_instructions
        gcc_rate = spec_app("gcc").ips(3000.0, 3000.0)
        leela_rate = spec_app("leela").ips(3000.0, 3000.0)
        assert gcc / gcc_rate == pytest.approx(3 * (leela / leela_rate),
                                               rel=0.05)

    def test_c_eff_is_residency_weighted_mixture(self):
        """The Fig 6 result: core power mixes linearly by residency."""
        hd = entry("cactusBSSN", 0.5)
        load_mix = TimeSharedCoreLoad([hd], 3000.0, absolute_quotas=True)
        sample = load_mix.advance(1e-3, 3000.0, 0.0)
        alone = TimeSharedCoreLoad(
            [entry("cactusBSSN", 1.0)], 3000.0, absolute_quotas=True
        ).advance(1e-3, 3000.0, 0.0)
        # same per-busy-time c_eff; only the busy fraction differs
        assert sample.c_eff == pytest.approx(alone.c_eff)
        assert sample.busy_fraction == pytest.approx(0.5)

    def test_avx_follows_running_apps(self):
        tiny_avx = spec_app("cam4").with_instructions(1e6)
        entries = [
            TimeShareEntry(app=RunningApp(tiny_avx), shares=1),
            entry("gcc", 1),
        ]
        load = TimeSharedCoreLoad(entries, 3000.0)
        assert load.uses_avx
        load.advance(1.0, 1700.0, 0.0)  # cam4 finishes
        assert not load.uses_avx

    def test_empty_group_rejected(self):
        with pytest.raises(SchedulerError):
            TimeSharedCoreLoad([], 3000.0)

    def test_duplicate_labels_rejected(self):
        with pytest.raises(SchedulerError):
            TimeSharedCoreLoad([entry("gcc", 1), entry("gcc", 1)], 3000.0)

    def test_nonpositive_shares_rejected(self):
        with pytest.raises(ShareError):
            entry("gcc", 0)
