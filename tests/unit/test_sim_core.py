"""Tests for simulated cores and core loads."""

import pytest

from repro.errors import SimulationError
from repro.sim.core import (
    BatchCoreLoad,
    ClusterCoreLoad,
    Core,
    IdleLoad,
    LoadSample,
)
from repro.workloads.app import RunningApp
from repro.workloads.spec import spec_app
from repro.workloads.websearch import WebsearchCluster, WebsearchConfig


class TestIdleLoad:
    def test_reports_nothing(self):
        sample = IdleLoad().advance(1e-3, 2000.0, 0.0)
        assert sample.instructions == 0
        assert sample.busy_fraction == 0
        assert sample.done


class TestBatchCoreLoad:
    def test_runs_app(self):
        load = BatchCoreLoad(RunningApp(spec_app("gcc", steady=True)), 2200.0)
        sample = load.advance(1e-3, 2200.0, 0.0)
        assert sample.instructions > 0
        assert sample.busy_fraction == 1.0
        assert not sample.done

    def test_avx_passthrough(self):
        avx = BatchCoreLoad(RunningApp(spec_app("cam4", steady=True)), 2200.0)
        plain = BatchCoreLoad(RunningApp(spec_app("gcc", steady=True)), 2200.0)
        assert avx.uses_avx and not plain.uses_avx

    def test_done_after_completion(self):
        tiny = spec_app("leela").with_instructions(1e6)
        load = BatchCoreLoad(RunningApp(tiny), 2200.0)
        load.advance(1.0, 2200.0, 0.0)
        sample = load.advance(1e-3, 2200.0, 1.0)
        assert sample.done
        assert sample.busy_fraction == 0.0

    def test_c_eff_includes_activity(self):
        app = spec_app("omnetpp", steady=True)  # memory bound
        load = BatchCoreLoad(RunningApp(app), 3000.0)
        sample = load.advance(1e-3, 3000.0, 0.0)
        assert sample.c_eff < app.c_eff  # stalls discount switching power

    def test_activity_memo_tracks_frequency_changes(self):
        app = spec_app("omnetpp", steady=True)
        load = BatchCoreLoad(RunningApp(app), 3000.0)
        low = load.advance(1e-3, 1000.0, 0.0).c_eff
        high = load.advance(1e-3, 3400.0, 0.0).c_eff
        assert low != high

    def test_rejects_bad_reference(self):
        with pytest.raises(SimulationError):
            BatchCoreLoad(RunningApp(spec_app("gcc")), 0.0)

    def test_name_is_app_label(self):
        run = RunningApp(spec_app("gcc"), instance=2)
        assert BatchCoreLoad(run, 2200.0).name == "gcc#2"


class TestClusterCoreLoad:
    def test_must_be_serving_core(self):
        cluster = WebsearchCluster([0, 1], WebsearchConfig(n_users=10))
        with pytest.raises(SimulationError):
            ClusterCoreLoad(cluster, 5)

    def test_collects_cluster_samples(self):
        cluster = WebsearchCluster([0], WebsearchConfig(n_users=20, seed=3))
        load = ClusterCoreLoad(cluster, 0)
        for _ in range(500):
            cluster.advance(2e-3, {0: 3000.0})
        sample = load.advance(1.0, 3000.0, 1.0)
        assert sample.instructions > 0
        assert 0 < sample.busy_fraction <= 1.0
        assert not sample.done


class TestCore:
    def test_initially_idle(self):
        core = Core(0, 800.0)
        assert not core.active
        assert isinstance(core.load, IdleLoad)

    def test_active_with_load(self):
        core = Core(0, 800.0)
        core.assign(BatchCoreLoad(RunningApp(spec_app("gcc", steady=True)),
                                  2200.0))
        assert core.active

    def test_parked_never_active(self):
        core = Core(0, 800.0)
        core.assign(BatchCoreLoad(RunningApp(spec_app("gcc", steady=True)),
                                  2200.0))
        core.parked = True
        assert not core.active

    def test_done_load_inactive(self):
        core = Core(0, 800.0)
        core.assign(IdleLoad())
        core.record(LoadSample(0, 0, 0, done=True), 0.1, 1e-3)
        assert not core.active

    def test_record_accumulates(self):
        core = Core(0, 800.0)
        core.record(LoadSample(1000.0, 1.0, 1.0), 5.0, 1e-3)
        core.record(LoadSample(1000.0, 0.5, 1.0), 5.0, 1e-3)
        assert core.total_instructions == 2000.0
        assert core.total_energy_j == pytest.approx(0.01)
        assert core.total_busy_s == pytest.approx(1.5e-3)
        assert core.total_time_s == pytest.approx(2e-3)

    def test_clear_resets_load(self):
        core = Core(0, 800.0)
        core.assign(BatchCoreLoad(RunningApp(spec_app("gcc", steady=True)),
                                  2200.0))
        core.clear()
        assert isinstance(core.load, IdleLoad)
