"""Tests for the unreliable control-plane transport."""

import pytest

from repro.cluster.transport import (
    ARBITER,
    DEMAND,
    GRANT,
    Envelope,
    SequenceGuard,
    TransportStats,
    UnreliableTransport,
    fold_reports,
)
from repro.errors import ConfigError
from repro.faults import LinkPartition, TransportScenario, get_transport_scenario


def env(kind=DEMAND, src="node0", dst=ARBITER, epoch=0, seq=0, payload=None):
    return Envelope(
        kind=kind, src=src, dst=dst, epoch=epoch, seq=seq, payload=payload
    )


class TestEnvelope:
    def test_unknown_kind_rejected(self):
        with pytest.raises(ConfigError):
            env(kind="gossip")

    def test_negative_epoch_rejected(self):
        with pytest.raises(ConfigError):
            env(epoch=-1)

    def test_frozen(self):
        e = env()
        with pytest.raises(AttributeError):
            e.epoch = 3


class TestTransportStats:
    def test_window_resets_totals_do_not(self):
        stats = TransportStats()
        stats.count("sent", 3)
        stats.count("dropped")
        window = stats.take_epoch()
        assert window["sent"] == 3 and window["dropped"] == 1
        assert stats.take_epoch()["sent"] == 0
        assert stats.sent == 3 and stats.dropped == 1

    def test_archived_windows_sorted_by_epoch(self):
        stats = TransportStats()
        stats.count("sent", 2)
        stats.take_epoch(4)
        stats.count("dropped")
        stats.take_epoch(1)  # archived out of order on purpose
        stats.count("sent")
        stats.take_epoch(7)
        epochs = [epoch for epoch, _ in stats.epoch_windows()]
        assert epochs == [1, 4, 7]
        assert dict(stats.epoch_windows())[4]["sent"] == 2

    def test_windows_jsonable_is_byte_stable(self):
        import json

        def build():
            stats = TransportStats()
            stats.count("sent", 2)
            stats.count("delayed")
            stats.take_epoch(2)
            stats.count("dropped")
            stats.take_epoch(0)
            return stats

        a = json.dumps(build().windows_jsonable(), sort_keys=True)
        b = json.dumps(build().windows_jsonable(), sort_keys=True)
        assert a == b
        rows = build().windows_jsonable()
        assert [row["epoch"] for row in rows] == [0, 2]
        # every row carries the full sorted key set, so consumers can
        # diff windows positionally
        assert all(
            list(row) == sorted(row, key=lambda k: (k != "epoch", k))
            for row in rows
        )


class TestSequenceGuard:
    def test_accepts_monotone_epochs(self):
        guard = SequenceGuard()
        assert guard.accept(env(epoch=0))
        assert guard.accept(env(epoch=1))
        assert guard.accept(env(epoch=5))

    def test_rejects_duplicates_and_stragglers(self):
        stats = TransportStats()
        guard = SequenceGuard(stats)
        assert guard.accept(env(epoch=3))
        assert not guard.accept(env(epoch=3))  # duplicate
        assert not guard.accept(env(epoch=1))  # reordered straggler
        assert stats.stale == 2

    def test_kinds_and_senders_tracked_independently(self):
        guard = SequenceGuard()
        assert guard.accept(env(epoch=3))
        assert guard.accept(env(epoch=3, src="node1"))
        assert guard.accept(env(kind=GRANT, src=ARBITER, dst="node0", epoch=3))


class TestFoldReports:
    def test_newest_report_per_node_wins(self):
        guard = SequenceGuard()
        batch = [
            env(epoch=1, payload="old"),
            env(epoch=2, payload="new"),
            env(epoch=1, src="node1", payload="n1"),
        ]
        folded = fold_reports(batch, guard)
        assert folded == {"node0": "new", "node1": "n1"}

    def test_grants_are_ignored(self):
        guard = SequenceGuard()
        batch = [env(kind=GRANT, src=ARBITER, dst="node0", payload=50.0)]
        assert fold_reports(batch, guard) == {}

    def test_guard_state_carries_across_calls(self):
        guard = SequenceGuard()
        assert fold_reports([env(epoch=2, payload="a")], guard)
        # the same epoch resent later is stale, not a fresh report
        assert fold_reports([env(epoch=2, payload="a")], guard) == {}


class TestQuietTransport:
    def test_perfect_delivery_same_epoch(self):
        transport = UnreliableTransport(get_transport_scenario("none"))
        transport.send(env(epoch=0, payload="r"), 0)
        assert [e.payload for e in transport.deliver(ARBITER, 0)] == ["r"]
        assert transport.stats.dropped == 0
        assert transport.stats.delivered == 1

    def test_delivery_preserves_send_order(self):
        transport = UnreliableTransport(get_transport_scenario("none"))
        for seq in range(5):
            transport.send(env(epoch=0, seq=seq, payload=seq), 0)
        got = [e.payload for e in transport.deliver(ARBITER, 0)]
        assert got == list(range(5))

    def test_undelivered_messages_stay_queued(self):
        transport = UnreliableTransport(get_transport_scenario("none"))
        transport.send(env(kind=GRANT, src=ARBITER, dst="node0"), 0)
        assert transport.deliver("node1", 0) == []
        assert transport.pending("node0") == 1


class TestFaultyTransport:
    def test_same_seed_replays_identically(self):
        scenario = get_transport_scenario("flaky-links", seed=9)
        outcomes = []
        for _ in range(2):
            transport = UnreliableTransport(scenario)
            log = []
            for epoch in range(12):
                for i in range(3):
                    transport.send(
                        env(src=f"node{i}", epoch=epoch, seq=epoch), epoch
                    )
                log.append(
                    [(e.src, e.epoch) for e in transport.deliver(ARBITER, epoch)]
                )
            outcomes.append((log, transport.stats.take_epoch()))
        assert outcomes[0] == outcomes[1]

    def test_drop_rate_drops(self):
        scenario = TransportScenario(name="t", drop_rate=1.0)
        transport = UnreliableTransport(scenario, seed=1)
        transport.send(env(), 0)
        assert transport.deliver(ARBITER, 0) == []
        assert transport.stats.dropped == 1

    def test_duplication_delivers_twice(self):
        scenario = TransportScenario(name="t", dup_rate=1.0)
        transport = UnreliableTransport(scenario, seed=1)
        transport.send(env(payload="x"), 0)
        assert [e.payload for e in transport.deliver(ARBITER, 0)] == ["x", "x"]
        assert transport.stats.duplicated == 1

    def test_delay_defers_delivery(self):
        scenario = TransportScenario(
            name="t", delay_rate=1.0, max_delay_epochs=1
        )
        transport = UnreliableTransport(scenario, seed=1)
        transport.send(env(epoch=0), 0)
        assert transport.deliver(ARBITER, 0) == []
        assert len(transport.deliver(ARBITER, 1)) == 1
        assert transport.stats.delayed == 1

    def test_partition_drops_at_send(self):
        scenario = TransportScenario(
            name="t", partitions=(LinkPartition(0, 2, "node0"),)
        )
        transport = UnreliableTransport(scenario, seed=1)
        transport.send(env(epoch=0), 0)
        transport.send(env(src="node1", epoch=0), 0)
        got = transport.deliver(ARBITER, 0)
        assert [e.src for e in got] == ["node1"]
        assert transport.stats.dropped == 1

    def test_partition_drops_delayed_arrival_at_pickup(self):
        # a delayed envelope landing inside a partition window dies at
        # the receiver's door, not just at the sender's
        scenario = TransportScenario(
            name="t",
            delay_rate=1.0,
            max_delay_epochs=1,
            partitions=(LinkPartition(1, 3, "node0"),),
        )
        transport = UnreliableTransport(scenario, seed=1)
        transport.send(env(epoch=0), 0)  # delayed to epoch 1
        assert transport.deliver(ARBITER, 1) == []
        assert transport.stats.dropped == 1

    def test_arbiter_partition_severs_every_link(self):
        scenario = TransportScenario(
            name="t", partitions=(LinkPartition(0, 1, None),)
        )
        transport = UnreliableTransport(scenario, seed=1)
        transport.send(env(src="node0"), 0)
        transport.send(env(kind=GRANT, src=ARBITER, dst="node1"), 0)
        assert transport.deliver(ARBITER, 0) == []
        assert transport.deliver("node1", 0) == []
        assert transport.stats.dropped == 2


class TestScenarioValidation:
    def test_unknown_name_rejected(self):
        from repro.errors import FaultConfigError

        with pytest.raises(FaultConfigError):
            get_transport_scenario("wet-string")

    def test_delay_rate_needs_max_delay(self):
        from repro.errors import FaultConfigError

        with pytest.raises(FaultConfigError):
            TransportScenario(name="t", delay_rate=0.5)

    def test_rates_bounded(self):
        from repro.errors import FaultConfigError

        with pytest.raises(FaultConfigError):
            TransportScenario(name="t", drop_rate=1.5)

    def test_partition_window_validated(self):
        from repro.errors import FaultConfigError

        with pytest.raises(FaultConfigError):
            LinkPartition(5, 5, "node0")

    def test_curated_scenarios_resolve(self):
        for name in (
            "none", "lossy-links", "slow-links", "flaky-links",
            "node0-partition", "arbiter-partition", "transport-storm",
        ):
            scenario = get_transport_scenario(name, seed=4)
            assert scenario.seed == 4
        assert get_transport_scenario("none").quiet
        assert not get_transport_scenario("transport-storm").quiet
