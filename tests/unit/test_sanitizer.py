"""Determinism sanitizer: canonical digests, divergence attribution.

The unit layer pins the digest format (exact float reprs, sorted
containers, stable hashing) and the attribution order (epoch, then
node, then field).  The last test injects a real divergence into a
live cluster run — a perturbed node report at one epoch — and asserts
the sanitizer names exactly that epoch, node, and field.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.analysis.sanitizer import (
    SANITIZE_ENV,
    StateDigest,
    canonical,
    compare_all,
    digest_fields,
    first_divergence,
    sanitize_enabled,
)
from repro.cluster.runtime import ClusterSim, run_cluster
from repro.experiments.cluster_exp import default_cluster_config


class TestCanonical:
    def test_floats_keep_exact_repr(self):
        assert canonical(0.1 + 0.2) == "0.30000000000000004"
        assert canonical(0.3) == "0.3"
        assert canonical(0.1 + 0.2) != canonical(0.3)

    def test_numpy_scalars_canonicalise_like_python_floats(self):
        np = pytest.importorskip("numpy")
        assert canonical(np.float64(1.5)) == canonical(1.5)

    def test_bool_is_not_treated_as_int_or_float(self):
        assert canonical(True) is True
        assert canonical(1) == 1

    def test_mappings_sort_keys_and_recurse(self):
        assert canonical({"b": 2.0, "a": 1.0}) == {"a": "1.0", "b": "2.0"}

    def test_sets_become_sorted_lists(self):
        assert canonical({3, 1, 2}) == ["1", "2", "3"]

    def test_dataclasses_flatten_to_field_maps(self):
        @dataclasses.dataclass
        class Point:
            x: float
            y: float

        assert canonical(Point(1.0, 2.0)) == {"x": "1.0", "y": "2.0"}
        assert digest_fields(Point(1.0, 2.0)) == {"x": "1.0", "y": "2.0"}

    def test_sanitize_enabled_env_semantics(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        assert not sanitize_enabled()
        monkeypatch.setenv(SANITIZE_ENV, "0")
        assert not sanitize_enabled()
        monkeypatch.setenv(SANITIZE_ENV, "1")
        assert sanitize_enabled()


class TestStateDigest:
    def recording(self, label, power=10.0):
        digest = StateDigest(label)
        for epoch in range(3):
            for node in ("node0", "node1"):
                digest.record(
                    epoch, node, {"power": power, "epoch": epoch}
                )
        return digest

    def test_identical_recordings_agree(self):
        a = self.recording("serial")
        b = self.recording("fork")
        assert a.digest() == b.digest()
        assert first_divergence(a, b) is None
        assert compare_all([a, b]) is None

    def test_digest_is_insensitive_to_record_order(self):
        a = StateDigest("fwd")
        a.record(0, "n", {"x": 1.0})
        a.record(1, "n", {"x": 2.0})
        b = StateDigest("rev")
        b.record(1, "n", {"x": 2.0})
        b.record(0, "n", {"x": 1.0})
        assert a.digest() == b.digest()

    def test_first_divergence_names_epoch_node_field(self):
        a = self.recording("serial")
        b = self.recording("fork")
        b.record(1, "node1", {"power": 10.5, "epoch": 1})
        d = first_divergence(a, b)
        assert d is not None
        assert (d.epoch, d.node, d.field) == (1, "node1", "power")
        assert d.left == "10.0" and d.right == "10.5"
        assert "epoch 1" in d.describe()
        assert "'node1'" in d.describe()
        assert "'power'" in d.describe()

    def test_attribution_orders_epoch_before_node_before_field(self):
        a = self.recording("serial")
        b = self.recording("fork")
        # perturb a later epoch AND an earlier one: the earlier wins
        b.record(2, "node0", {"power": 9.0, "epoch": 2})
        b.record(1, "node0", {"power": 8.0, "epoch": 1})
        d = first_divergence(a, b)
        assert (d.epoch, d.node) == (1, "node0")

    def test_missing_row_uses_sentinel(self):
        a = self.recording("serial")
        b = self.recording("fork")
        rows = b.rows
        b._rows.pop((2, "node1"))
        d = first_divergence(a, b)
        assert (d.epoch, d.node, d.field) == (2, "node1", "<row>")
        assert d.right == "<missing>"
        assert rows  # the .rows property is a defensive copy
        assert (2, "node1") in rows

    def test_missing_field_uses_sentinel(self):
        a = StateDigest("l")
        b = StateDigest("r")
        a.record(0, "n", {"x": 1.0, "y": 2.0})
        b.record(0, "n", {"x": 1.0})
        d = first_divergence(a, b)
        assert d.field == "y"
        assert d.right == "<missing>"

    def test_compare_all_checks_everything_against_first(self):
        a = self.recording("ref")
        b = self.recording("same")
        c = self.recording("off", power=11.0)
        d = compare_all([a, b, c])
        assert d is not None
        assert d.right_label == "off"
        assert compare_all([]) is None
        assert compare_all([a]) is None


class TestClusterInjection:
    """The sanitizer catches a real injected divergence, attributed."""

    def config(self):
        return default_cluster_config(n_nodes=2, seed=7)

    def test_clean_runs_produce_identical_digests(self):
        left = run_cluster(self.config(), 30.0, sanitize=True)
        right = run_cluster(self.config(), 30.0, sanitize=True)
        assert left.sanitizer is not None
        assert len(left.sanitizer) == 6  # 3 epochs x 2 nodes
        assert compare_all([left.sanitizer, right.sanitizer]) is None

    def test_injected_report_perturbation_is_attributed(self):
        clean = run_cluster(self.config(), 30.0, sanitize=True)

        sim = ClusterSim(self.config(), sanitize=True)
        stepper = sim._ensure_stepper()
        true_step = stepper.step

        def perturbed_step(epoch, t0, t1, caps, safe, down, restarts,
                           idle):
            reports = true_step(
                epoch, t0, t1, caps, safe, down, restarts, idle
            )
            if epoch == 1:
                reports["node1"] = dataclasses.replace(
                    reports["node1"],
                    mean_power_w=reports["node1"].mean_power_w + 0.5,
                )
            return reports

        stepper.step = perturbed_step
        try:
            dirty = sim.run(30.0)
        finally:
            sim.close()

        d = first_divergence(clean.sanitizer, dirty.sanitizer)
        assert d is not None
        assert (d.epoch, d.node, d.field) == (1, "node1", "mean_power_w")
        assert "mean_power_w" in d.describe()

    def test_sanitizer_off_by_default(self, monkeypatch):
        monkeypatch.delenv(SANITIZE_ENV, raising=False)
        run = run_cluster(self.config(), 10.0)
        assert run.sanitizer is None
