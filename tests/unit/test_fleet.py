"""Unit tests for the fleet substrate: topology, water-fill, schedule.

The arbitration logic built on these lives in
``test_fleet_arbiter.py``; here each piece is checked in isolation
against its documented contract.
"""

import math

import pytest

from repro.core.minfund import Claim, refill_pool
from repro.errors import ConfigError
from repro.fleet import (
    DiurnalSchedule,
    DomainSpec,
    assess_oversubscription,
    domain_from_jsonable,
    grid_topology,
    iter_domains,
    leaf_racks,
    rack_of_map,
    rack_row_indices,
    validate_topology,
    waterfill,
)


# -- topology ---------------------------------------------------------------------


class TestDomainSpec:
    def test_rejects_empty_name(self):
        with pytest.raises(ConfigError, match="name"):
            DomainSpec(name="", nodes=("a",))

    def test_rejects_nonpositive_shares(self):
        with pytest.raises(ConfigError, match="shares"):
            DomainSpec(name="d", shares=0.0, nodes=("a",))

    def test_rejects_both_children_and_nodes(self):
        leaf = DomainSpec(name="leaf", nodes=("a",))
        with pytest.raises(ConfigError, match="both"):
            DomainSpec(name="d", children=(leaf,), nodes=("b",))

    def test_rejects_empty_domain(self):
        with pytest.raises(ConfigError, match="child domains or nodes"):
            DomainSpec(name="d")

    def test_rejects_nonpositive_ceiling(self):
        with pytest.raises(ConfigError, match="ceiling"):
            DomainSpec(name="d", nodes=("a",), ceiling_w=0.0)


class TestGridTopology:
    def test_names_are_hierarchical_and_in_rack_order(self):
        root, names = grid_topology(2, 2, 2)
        assert names == (
            "row0/rack0/n000", "row0/rack0/n001",
            "row0/rack1/n000", "row0/rack1/n001",
            "row1/rack0/n000", "row1/rack0/n001",
            "row1/rack1/n000", "row1/rack1/n001",
        )
        assert root.name == "facility"
        assert [d.name for d in root.children] == ["row0", "row1"]

    def test_preorder_walk_parent_before_children(self):
        root, _ = grid_topology(2, 1, 1)
        walk = [d.name for d in iter_domains(root)]
        assert walk == [
            "facility", "row0", "row0/rack0", "row1", "row1/rack0"
        ]

    def test_leaf_racks_and_rack_of(self):
        root, names = grid_topology(1, 2, 3)
        racks = leaf_racks(root)
        assert [r.name for r in racks] == ["row0/rack0", "row0/rack1"]
        mapping = rack_of_map(root)
        assert set(mapping) == set(names)
        assert mapping["row0/rack1/n002"] == "row0/rack1"

    def test_rack_row_indices_follow_depth1_ancestor(self):
        root, _ = grid_topology(3, 2, 1)
        rows = rack_row_indices(root)
        assert rows["row0/rack1"] == 0
        assert rows["row2/rack0"] == 2

    def test_rejects_degenerate_dimensions(self):
        with pytest.raises(ConfigError, match="at least 1"):
            grid_topology(0, 4, 4)


class TestValidateTopology:
    def test_accepts_the_grid(self):
        root, names = grid_topology(2, 2, 2)
        validate_topology(root, names, {n: 10.0 for n in names})

    def test_rejects_duplicate_domain_names(self):
        dup = DomainSpec(name="r", nodes=("a",))
        root = DomainSpec(
            name="f",
            children=(dup, DomainSpec(name="r", nodes=("b",))),
        )
        with pytest.raises(ConfigError, match="duplicate"):
            validate_topology(root, ("a", "b"), {"a": 1.0, "b": 1.0})

    def test_rejects_node_placed_twice(self):
        root = DomainSpec(
            name="f",
            children=(
                DomainSpec(name="r0", nodes=("a",)),
                DomainSpec(name="r1", nodes=("a",)),
            ),
        )
        with pytest.raises(ConfigError, match="appears in both"):
            validate_topology(root, ("a",), {"a": 1.0})

    def test_rejects_unplaced_and_unknown_nodes(self):
        root = DomainSpec(name="f", nodes=("a", "ghost"))
        with pytest.raises(ConfigError, match="unknown"):
            validate_topology(root, ("a",), {"a": 1.0})
        root = DomainSpec(name="f", nodes=("a",))
        with pytest.raises(ConfigError, match="does not place"):
            validate_topology(root, ("a", "b"), {"a": 1.0, "b": 1.0})

    def test_rejects_ceiling_below_member_floors(self):
        root = DomainSpec(
            name="f",
            children=(
                DomainSpec(name="r", nodes=("a", "b"), ceiling_w=15.0),
            ),
        )
        with pytest.raises(ConfigError, match="below"):
            validate_topology(root, ("a", "b"), {"a": 10.0, "b": 10.0})

    def test_jsonable_round_trip(self):
        root, _ = grid_topology(2, 2, 2, rack_ceiling_w=80.0)
        from dataclasses import asdict

        assert domain_from_jsonable(asdict(root)) == root


# -- water-fill -------------------------------------------------------------------


def claims_of(bounds):
    return [
        Claim(label=f"c{i}", shares=shares, current=0.0, lo=lo, hi=hi)
        for i, (shares, lo, hi) in enumerate(bounds)
    ]


class TestWaterfill:
    def test_empty_claims(self):
        assert waterfill(100.0, []) == {}

    def test_infeasible_low_pool_degrades_to_floors(self):
        claims = claims_of([(1.0, 10.0, 40.0), (1.0, 12.0, 40.0)])
        assert waterfill(5.0, claims) == {"c0": 10.0, "c1": 12.0}

    def test_abundant_pool_gives_every_ceiling(self):
        claims = claims_of([(1.0, 10.0, 40.0), (2.0, 10.0, 30.0)])
        assert waterfill(500.0, claims) == {"c0": 40.0, "c1": 30.0}

    def test_exact_sum_and_share_proportionality(self):
        claims = claims_of(
            [(2.0, 5.0, 100.0), (1.0, 5.0, 100.0), (1.0, 5.0, 100.0)]
        )
        fill = waterfill(80.0, claims)
        assert math.isclose(sum(fill.values()), 80.0, abs_tol=1e-9)
        # nobody pinned at a bound: allocations follow shares exactly
        assert math.isclose(fill["c0"], 2 * fill["c1"], rel_tol=1e-12)
        assert fill["c1"] == fill["c2"]

    def test_matches_bisection_reference(self):
        import random

        rng = random.Random(7)
        for _ in range(50):
            claims = claims_of([
                (
                    rng.uniform(0.5, 4.0),
                    lo := rng.uniform(1.0, 20.0),
                    lo + rng.uniform(0.0, 50.0),
                )
                for _ in range(rng.randint(1, 12))
            ])
            lo_sum = sum(c.lo for c in claims)
            hi_sum = sum(c.hi for c in claims)
            pool = rng.uniform(lo_sum * 0.5, hi_sum * 1.2)
            sweep = waterfill(pool, claims)
            bisect = refill_pool(pool, claims)
            for claim in claims:
                assert math.isclose(
                    sweep[claim.label], bisect[claim.label], abs_tol=1e-6
                )


# -- diurnal schedule -------------------------------------------------------------


class TestDiurnalSchedule:
    def test_trough_and_peak(self):
        sched = DiurnalSchedule()
        assert sched.active_fraction(0) == pytest.approx(0.15)
        assert sched.active_fraction(12) == pytest.approx(0.65)

    def test_row_phase_shifts_the_curve(self):
        sched = DiurnalSchedule(row_phase_epochs=2)
        assert sched.active_fraction(2, row_index=1) == pytest.approx(
            sched.active_fraction(0, row_index=0)
        )

    def test_active_count_clamped(self):
        sched = DiurnalSchedule(
            base_active_fraction=0.0, peak_active_fraction=1.0
        )
        for epoch in range(48):
            count = sched.active_count(8, epoch)
            assert 0 <= count <= 8

    def test_validation(self):
        with pytest.raises(ConfigError, match="period"):
            DiurnalSchedule(period_epochs=1)
        with pytest.raises(ConfigError, match="base_active_fraction"):
            DiurnalSchedule(base_active_fraction=-0.1)
        with pytest.raises(ConfigError, match="below"):
            DiurnalSchedule(
                base_active_fraction=0.8, peak_active_fraction=0.2
            )


class TestAssessOversubscription:
    def topology(self):
        return grid_topology(2, 1, 4)

    def test_without_schedule_degenerates_to_ceiling_sum(self):
        root, names = self.topology()
        report = assess_oversubscription(
            400.0,
            root,
            {n: 10.0 for n in names},
            {n: 45.0 for n in names},
        )
        assert report.peak_demand_w == pytest.approx(8 * 45.0)
        assert report.ceiling_sum_w == pytest.approx(8 * 45.0)
        assert report.floor_sum_w == pytest.approx(8 * 10.0)
        assert report.safe is (8 * 45.0 <= 400.0)

    def test_schedule_peak_uses_first_k_activation(self):
        root, names = self.topology()
        sched = DiurnalSchedule(
            period_epochs=4,
            base_active_fraction=0.5,
            peak_active_fraction=0.5,
            row_phase_epochs=0,
        )
        report = assess_oversubscription(
            1000.0,
            root,
            {n: 10.0 for n in names},
            {n: 45.0 for n in names},
            sched,
        )
        # every epoch: 2 of 4 nodes per rack at ceiling, 2 at floor
        assert report.peak_demand_w == pytest.approx(
            2 * (2 * 45.0 + 2 * 10.0)
        )
        assert report.safe
        assert report.margin_w == pytest.approx(
            1000.0 - report.peak_demand_w
        )

    def test_rack_ceiling_caps_the_statistical_peak(self):
        root, names = grid_topology(1, 2, 2, rack_ceiling_w=60.0)
        report = assess_oversubscription(
            500.0,
            root,
            {n: 10.0 for n in names},
            {n: 45.0 for n in names},
        )
        assert report.peak_demand_w == pytest.approx(120.0)

    def test_oversubscribed_budget_flagged_unsafe(self):
        root, names = self.topology()
        report = assess_oversubscription(
            100.0,
            root,
            {n: 10.0 for n in names},
            {n: 45.0 for n in names},
        )
        assert not report.safe
        assert report.margin_w < 0
        assert report.ratio > 1.0
