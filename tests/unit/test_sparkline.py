"""Tests for the ASCII sparkline/strip-chart renderers."""

import pytest

from repro.errors import ConfigError
from repro.experiments.sparkline import sparkline, strip_chart


class TestSparkline:
    def test_length_matches_input(self):
        assert len(sparkline([1, 2, 3])) == 3

    def test_extremes_use_extreme_bars(self):
        line = sparkline([0.0, 1.0])
        assert line[0] == "▁"
        assert line[-1] == "█"

    def test_flat_series_mid_bars(self):
        line = sparkline([5.0] * 4)
        assert len(set(line)) == 1

    def test_monotone_series_is_nondecreasing(self):
        line = sparkline([1, 2, 3, 4, 5, 6, 7, 8])
        assert list(line) == sorted(line)

    def test_downsampling(self):
        line = sparkline(list(range(100)), width=10)
        assert len(line) == 10

    def test_short_series_not_padded(self):
        assert len(sparkline([1, 2], width=10)) == 2

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            sparkline([])

    def test_bad_width_rejected(self):
        with pytest.raises(ConfigError):
            sparkline([1.0], width=0)


class TestStripChart:
    def test_dimensions(self):
        chart = strip_chart([1, 5, 3, 8, 2], height=5, width=20)
        lines = chart.splitlines()
        assert len(lines) == 5
        assert "8.0" in lines[0]
        assert "1.0" in lines[-1]

    def test_label_line(self):
        chart = strip_chart([1, 2], label="power W")
        assert chart.splitlines()[0] == "power W"

    def test_reference_line_drawn(self):
        chart = strip_chart([10.0] * 30, reference=20.0, height=6)
        assert "-" in chart

    def test_reference_expands_range(self):
        chart = strip_chart([10.0, 11.0], reference=50.0)
        assert "50.0" in chart

    def test_stars_present(self):
        assert "*" in strip_chart([1, 9, 1, 9])

    def test_too_small_rejected(self):
        with pytest.raises(ConfigError):
            strip_chart([1, 2], height=1)

    def test_empty_rejected(self):
        with pytest.raises(ConfigError):
            strip_chart([])
