"""Edge-path tests: the exception hierarchy and small remaining guards."""

import pytest

from repro import errors


class TestHierarchy:
    def test_all_derive_from_repro_error(self):
        leaves = [
            errors.ConfigError,
            errors.PlatformError,
            errors.UnsupportedFeatureError,
            errors.MSRError,
            errors.MSRAddressError,
            errors.MSRPermissionError,
            errors.FrequencyError,
            errors.SchedulerError,
            errors.PolicyError,
            errors.ShareError,
            errors.StarvationError,
            errors.SimulationError,
        ]
        for exc in leaves:
            assert issubclass(exc, errors.ReproError)

    def test_unsupported_feature_is_platform_error(self):
        assert issubclass(
            errors.UnsupportedFeatureError, errors.PlatformError
        )

    def test_msr_subtypes(self):
        assert issubclass(errors.MSRAddressError, errors.MSRError)
        assert issubclass(errors.MSRPermissionError, errors.MSRError)

    def test_share_error_is_policy_error(self):
        assert issubclass(errors.ShareError, errors.PolicyError)

    def test_catchable_at_api_boundary(self):
        from repro.hw.platform import get_platform

        with pytest.raises(errors.ReproError):
            get_platform("nonexistent")


class TestRaplDomain:
    def test_domains_named(self):
        from repro.hw.rapl import RaplDomain

        assert RaplDomain.PACKAGE.value == "package"
        assert RaplDomain.CORE.value == "core"
