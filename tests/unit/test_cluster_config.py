"""Tests for the declarative cluster configuration."""

import pytest

from repro.cluster.config import (
    ClusterConfig,
    GroupSpec,
    NodeSpec,
    ROOT_GROUP,
    cluster_config_from_jsonable,
    cluster_config_to_jsonable,
)
from repro.config import AppSpec
from repro.errors import ConfigError

APPS = (AppSpec("leela", shares=50.0), AppSpec("cactusBSSN", shares=50.0))


def node(name="n0", **kwargs):
    return NodeSpec(name=name, apps=APPS, **kwargs)


class TestNodeSpec:
    def test_defaults(self):
        spec = node()
        assert spec.platform == "skylake"
        assert spec.policy == "frequency-shares"
        assert spec.group == ROOT_GROUP

    def test_max_cap_defaults_to_platform_tdp(self):
        from repro.hw.platform import get_platform

        assert node().resolved_max_cap_w() == pytest.approx(
            get_platform("skylake").power.tdp_watts
        )
        assert node(max_cap_w=33.0).resolved_max_cap_w() == 33.0

    def test_rejects_empty_name_and_apps(self):
        with pytest.raises(ConfigError):
            NodeSpec(name="", apps=APPS)
        with pytest.raises(ConfigError):
            NodeSpec(name="n0", apps=())

    def test_rejects_unknown_policy(self):
        with pytest.raises(ConfigError, match="unknown policy"):
            node(policy="telepathy")

    def test_rejects_unknown_fault_scenario(self):
        with pytest.raises(ConfigError):
            node(faults="not-a-scenario")

    def test_rejects_bad_cap_range(self):
        with pytest.raises(ConfigError):
            node(min_cap_w=0.0)
        with pytest.raises(ConfigError):
            node(min_cap_w=30.0, max_cap_w=20.0)

    def test_rejects_bad_lifecycle(self):
        with pytest.raises(ConfigError):
            node(joins_at_s=-1.0)
        with pytest.raises(ConfigError, match="not after"):
            node(joins_at_s=10.0, leaves_at_s=10.0)
        with pytest.raises(ConfigError, match="not after"):
            node(joins_at_s=10.0, crashes_at_s=5.0)
        with pytest.raises(ConfigError, match="both leave and crash"):
            node(leaves_at_s=20.0, crashes_at_s=30.0)


class TestClusterConfig:
    def test_epoch_seconds(self):
        config = ClusterConfig(budget_w=100.0, nodes=(node(),),
                               epoch_ticks=10, interval_s=1.0)
        assert config.epoch_s == 10.0

    def test_node_lookup(self):
        config = ClusterConfig(
            budget_w=100.0, nodes=(node("a"), node("b"))
        )
        assert config.node("b").name == "b"
        with pytest.raises(ConfigError):
            config.node("ghost")

    def test_rejects_duplicate_node_names(self):
        with pytest.raises(ConfigError, match="duplicate"):
            ClusterConfig(budget_w=100.0, nodes=(node("a"), node("a")))

    def test_rejects_overcommitted_floors(self):
        with pytest.raises(ConfigError, match="floors"):
            ClusterConfig(
                budget_w=20.0,
                nodes=(node("a", min_cap_w=15.0),
                       node("b", min_cap_w=15.0)),
            )

    def test_rejects_bad_scalars(self):
        with pytest.raises(ConfigError):
            ClusterConfig(budget_w=0.0, nodes=(node(),))
        with pytest.raises(ConfigError):
            ClusterConfig(budget_w=100.0, nodes=())
        with pytest.raises(ConfigError):
            ClusterConfig(budget_w=100.0, nodes=(node(),), epoch_ticks=0)
        with pytest.raises(ConfigError):
            ClusterConfig(budget_w=100.0, nodes=(node(),), seed=-1)

    def test_group_references_validated(self):
        with pytest.raises(ConfigError, match="unknown group"):
            ClusterConfig(
                budget_w=100.0,
                nodes=(node("a", group="prod"),),
                groups=(GroupSpec("batch"),),
            )
        with pytest.raises(ConfigError, match="declares none"):
            ClusterConfig(
                budget_w=100.0, nodes=(node("a", group="prod"),)
            )
        with pytest.raises(ConfigError, match="duplicate group"):
            ClusterConfig(
                budget_w=100.0,
                nodes=(node("a", group="prod"),),
                groups=(GroupSpec("prod"), GroupSpec("prod")),
            )

    def test_flat_group_shares(self):
        config = ClusterConfig(budget_w=100.0, nodes=(node(),))
        assert config.group_shares() == {ROOT_GROUP: 1.0}
        assert config.group_of(config.nodes[0]) == ROOT_GROUP

    def test_two_level_group_shares(self):
        config = ClusterConfig(
            budget_w=100.0,
            nodes=(node("a", group="prod"), node("b", group="batch")),
            groups=(GroupSpec("prod", shares=3.0), GroupSpec("batch")),
        )
        assert config.group_shares() == {"prod": 3.0, "batch": 1.0}


class TestFaultSeeds:
    def test_distinct_per_node_derivation(self):
        config = ClusterConfig(
            budget_w=100.0, nodes=(node("a"), node("b")), seed=5
        )
        seeds = {config.node_fault_seed(i) for i in range(2)}
        assert len(seeds) == 2

    def test_explicit_seed_wins(self):
        config = ClusterConfig(
            budget_w=100.0, nodes=(node("a", fault_seed=99),)
        )
        assert config.node_fault_seed(0) == 99

    def test_different_cluster_seeds_differ(self):
        one = ClusterConfig(budget_w=100.0, nodes=(node(),), seed=1)
        two = ClusterConfig(budget_w=100.0, nodes=(node(),), seed=2)
        assert one.node_fault_seed(0) != two.node_fault_seed(0)


class TestJsonRoundTrip:
    def test_full_fidelity(self):
        config = ClusterConfig(
            budget_w=120.0,
            nodes=(
                node("a", shares=2.0, group="prod", faults="flaky-msr"),
                node("b", group="batch", joins_at_s=20.0,
                     crashes_at_s=50.0, max_cap_w=40.0),
            ),
            groups=(GroupSpec("prod", shares=2.0), GroupSpec("batch")),
            epoch_ticks=5,
            seed=7,
        )
        data = cluster_config_to_jsonable(config)
        import json

        json.dumps(data)  # must be pure JSON
        assert cluster_config_from_jsonable(data) == config
