"""Tests for the on-disk experiment result cache."""

import json

import pytest

from repro.config import AppSpec, ExperimentConfig
from repro.core.types import Priority
from repro.experiments.cache import (
    ResultCache,
    cache_disabled_by_env,
    cache_key,
)
from repro.experiments.runner import SteadyAppResult, SteadyRunResult


def make_config(**overrides):
    base = dict(
        platform="skylake",
        policy="frequency-shares",
        limit_w=45.0,
        apps=(
            AppSpec("leela", shares=60.0),
            AppSpec("lbm", shares=40.0, priority=Priority.LOW),
        ),
        tick_s=5e-3,
    )
    base.update(overrides)
    return ExperimentConfig(**base)


def make_result(config):
    # awkward floats on purpose: the cache must round-trip them exactly
    return SteadyRunResult(
        config=config,
        mean_package_power_w=0.1 + 0.2,
        apps=(
            SteadyAppResult(
                label="leela#0",
                mean_frequency_mhz=2199.9999999999998,
                mean_ips=1.23e9 / 3.0,
                mean_power_w=None,
                normalized_performance=2.0 / 3.0,
                parked_fraction=0.0,
            ),
            SteadyAppResult(
                label="lbm#1",
                mean_frequency_mhz=1400.0,
                mean_ips=7.7e8,
                mean_power_w=6.25,
                normalized_performance=0.5,
                parked_fraction=1.0 / 3.0,
            ),
        ),
    )


@pytest.fixture
def cache(tmp_path):
    return ResultCache(root=tmp_path)


class TestRoundTrip:
    def test_miss_then_exact_hit(self, cache):
        config = make_config()
        assert cache.get(config, 10.0, 2.0) is None
        result = make_result(config)
        cache.put(config, 10.0, 2.0, result)
        hit = cache.get(config, 10.0, 2.0)
        assert hit == result  # dataclass equality: every float exact
        assert cache.stats.misses == 1
        assert cache.stats.stores == 1
        assert cache.stats.hits == 1

    def test_none_power_survives(self, cache):
        config = make_config()
        cache.put(config, 10.0, 2.0, make_result(config))
        hit = cache.get(config, 10.0, 2.0)
        assert hit.apps[0].mean_power_w is None
        assert hit.apps[1].mean_power_w == 6.25


class TestKeying:
    def test_key_is_stable(self):
        assert cache_key(make_config(), 10.0, 2.0) == cache_key(
            make_config(), 10.0, 2.0
        )

    @pytest.mark.parametrize(
        "change",
        [
            dict(limit_w=50.0),
            dict(policy="performance-shares"),
            dict(platform="ryzen"),
            dict(tick_s=1e-3),
            dict(apps=(AppSpec("leela", shares=61.0),
                       AppSpec("lbm", shares=40.0, priority=Priority.LOW))),
            dict(apps=(AppSpec("leela", shares=60.0),
                       AppSpec("lbm", shares=40.0))),
            dict(faults="full-storm"),
        ],
    )
    def test_config_change_changes_key(self, change):
        assert cache_key(make_config(), 10.0, 2.0) != cache_key(
            make_config(**change), 10.0, 2.0
        )

    def test_duration_and_warmup_change_key(self):
        base = cache_key(make_config(), 10.0, 2.0)
        assert cache_key(make_config(), 11.0, 2.0) != base
        assert cache_key(make_config(), 10.0, 2.5) != base

    def test_distinct_configs_do_not_collide(self, cache):
        a, b = make_config(), make_config(limit_w=50.0)
        cache.put(a, 10.0, 2.0, make_result(a))
        assert cache.get(b, 10.0, 2.0) is None


class TestCorruption:
    def _entry_path(self, cache, config):
        cache.put(config, 10.0, 2.0, make_result(config))
        paths = list(cache.root.rglob("*.json"))
        assert len(paths) == 1
        return paths[0]

    def test_corrupt_entry_is_dropped(self, cache):
        config = make_config()
        path = self._entry_path(cache, config)
        path.write_text("{not json")
        assert cache.get(config, 10.0, 2.0) is None
        assert not path.exists()

    def test_schema_mismatch_is_dropped(self, cache):
        config = make_config()
        path = self._entry_path(cache, config)
        data = json.loads(path.read_text())
        data["schema"] = -1
        path.write_text(json.dumps(data))
        assert cache.get(config, 10.0, 2.0) is None
        assert not path.exists()


class TestEnvironment:
    def test_no_cache_env_disables(self, monkeypatch):
        monkeypatch.setenv("REPRO_NO_CACHE", "1")
        assert cache_disabled_by_env()
        assert ResultCache.from_env() is None

    def test_falsy_env_values_keep_cache(self, monkeypatch):
        for value in ("", "0", "false"):
            monkeypatch.setenv("REPRO_NO_CACHE", value)
            assert not cache_disabled_by_env()

    def test_caller_disable_wins(self, monkeypatch):
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        assert ResultCache.from_env(enabled=False) is None

    def test_cache_dir_env_relocates(self, monkeypatch, tmp_path):
        monkeypatch.setenv("REPRO_CACHE_DIR", str(tmp_path / "alt"))
        monkeypatch.delenv("REPRO_NO_CACHE", raising=False)
        cache = ResultCache.from_env()
        assert cache is not None
        config = make_config()
        cache.put(config, 10.0, 2.0, make_result(config))
        assert list((tmp_path / "alt").rglob("*.json"))
