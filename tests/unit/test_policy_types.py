"""Tests for policy types and the Policy base class."""

import pytest

from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.policy import PolicyConfig
from repro.core.types import (
    AppTelemetry,
    ManagedApp,
    PolicyDecision,
    PolicyInputs,
    Priority,
)
from repro.errors import ConfigError, ShareError


def managed(label="a", core=0, **kw):
    return ManagedApp(label=label, core_id=core, **kw)


def telemetry(label, freq=1000.0, ips=1e9, power=None, parked=False):
    return AppTelemetry(
        label=label,
        active_frequency_mhz=freq,
        ips=ips,
        busy_fraction=1.0,
        power_w=power,
        parked=parked,
    )


class TestManagedApp:
    def test_defaults(self):
        app = managed()
        assert app.priority is Priority.HIGH
        assert app.shares == 1.0

    def test_empty_label_rejected(self):
        with pytest.raises(ConfigError):
            managed(label="")

    def test_nonpositive_shares_rejected(self):
        with pytest.raises(ShareError):
            managed(shares=0)

    def test_bad_baseline_rejected(self):
        with pytest.raises(ConfigError):
            managed(baseline_ips=-1.0)


class TestPolicyInputs:
    def test_telemetry_lookup(self):
        inputs = PolicyInputs(
            iteration=0, limit_w=50.0, package_power_w=45.0,
            apps=(telemetry("a"), telemetry("b")),
            current_targets={},
        )
        assert inputs.telemetry("b").label == "b"

    def test_unknown_label_raises(self):
        inputs = PolicyInputs(
            iteration=0, limit_w=50.0, package_power_w=45.0,
            apps=(), current_targets={},
        )
        with pytest.raises(ConfigError):
            inputs.telemetry("x")

    def test_power_error_sign(self):
        inputs = PolicyInputs(
            iteration=0, limit_w=50.0, package_power_w=55.0,
            apps=(), current_targets={},
        )
        assert inputs.power_error_w == -5.0


class TestPolicyDecision:
    def test_validate_ok(self):
        decision = PolicyDecision(targets={"a": 1000.0}, parked={"b"})
        decision.validate({"a", "b"})

    def test_unknown_app_rejected(self):
        decision = PolicyDecision(targets={"x": 1000.0})
        with pytest.raises(ConfigError):
            decision.validate({"a"})

    def test_nonpositive_target_rejected(self):
        decision = PolicyDecision(targets={"a": 0.0})
        with pytest.raises(ConfigError):
            decision.validate({"a"})

    def test_parked_app_may_have_any_target(self):
        decision = PolicyDecision(targets={"a": 0.0}, parked={"a"})
        decision.validate({"a"})


class TestPolicyBase:
    def test_duplicate_labels_rejected(self, skylake):
        with pytest.raises(ConfigError):
            FrequencySharesPolicy(
                skylake, [managed("a", 0), managed("a", 1)], 50.0
            )

    def test_duplicate_cores_rejected(self, skylake):
        with pytest.raises(ConfigError):
            FrequencySharesPolicy(
                skylake, [managed("a", 0), managed("b", 0)], 50.0
            )

    def test_no_apps_rejected(self, skylake):
        with pytest.raises(ConfigError):
            FrequencySharesPolicy(skylake, [], 50.0)

    def test_nonpositive_limit_rejected(self, skylake):
        with pytest.raises(ConfigError):
            FrequencySharesPolicy(skylake, [managed()], 0.0)

    def test_alpha_uses_max_power(self, skylake):
        policy = FrequencySharesPolicy(skylake, [managed()], 50.0)
        assert policy.alpha(8.5) == pytest.approx(8.5 / 85.0)

    def test_deadband_zeroes_small_errors(self, skylake):
        policy = FrequencySharesPolicy(skylake, [managed()], 50.0)
        assert policy.scaled_step(0.5) == 0.0
        assert policy.scaled_step(-0.5) == 0.0

    def test_asymmetric_gain(self, skylake):
        policy = FrequencySharesPolicy(skylake, [managed()], 50.0)
        assert policy.scaled_step(4.0) == pytest.approx(2.0)
        assert policy.scaled_step(-4.0) == pytest.approx(-4.0)

    def test_config_validation(self):
        with pytest.raises(ConfigError):
            PolicyConfig(max_power_w=0)
        with pytest.raises(ConfigError):
            PolicyConfig(max_power_w=85.0, upward_gain=0.0)

    def test_app_max_frequency_override(self, skylake):
        policy = FrequencySharesPolicy(
            skylake, [managed(max_frequency_mhz=1700.0)], 50.0
        )
        assert policy.app_max_frequency(policy.apps[0]) == 1700.0

    def test_min_frequency_uses_policy_floor(self, ryzen):
        policy = FrequencySharesPolicy(ryzen, [managed()], 50.0)
        assert policy.min_frequency == 800.0
