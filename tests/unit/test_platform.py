"""Tests for the platform descriptors (paper Table 1 fidelity)."""

import pytest

from repro.errors import ConfigError, PlatformError
from repro.hw.platform import (
    PLATFORM_REGISTRY,
    get_platform,
    ryzen_1700x,
    skylake_xeon_4114,
)


class TestSkylakeSpec:
    """The Xeon SP 4114 facts from paper Table 1."""

    def test_core_count(self, skylake):
        assert skylake.n_cores == 10
        assert skylake.n_threads == 20

    def test_frequency_range(self, skylake):
        assert skylake.min_frequency_mhz == 800.0
        assert skylake.max_nominal_frequency_mhz == 2200.0
        assert skylake.max_frequency_mhz == 3000.0

    def test_step_100mhz(self, skylake):
        assert skylake.step_mhz == 100.0

    def test_rapl_range(self, skylake):
        assert skylake.has_rapl_limit
        assert skylake.rapl_limit_range_w == (20.0, 85.0)

    def test_no_per_core_energy(self, skylake):
        """Power shares are impossible on Skylake (paper section 4.2)."""
        assert not skylake.has_per_core_energy

    def test_unrestricted_simultaneous_pstates(self, skylake):
        assert skylake.simultaneous_pstates == skylake.n_cores

    def test_reference_frequency(self, skylake):
        assert skylake.reference_frequency_mhz == 2200.0

    def test_avx_cap_below_nominal_max(self, skylake):
        assert skylake.avx_max_frequency_mhz < skylake.max_nominal_frequency_mhz


class TestRyzenSpec:
    """The Ryzen 1700X facts from paper Table 1."""

    def test_core_count(self, ryzen):
        assert ryzen.n_cores == 8
        assert ryzen.n_threads == 16

    def test_frequency_range(self, ryzen):
        assert ryzen.min_frequency_mhz == 400.0
        assert ryzen.max_frequency_mhz == 3800.0

    def test_step_25mhz(self, ryzen):
        assert ryzen.step_mhz == 25.0

    def test_three_simultaneous_pstates(self, ryzen):
        assert ryzen.simultaneous_pstates == 3

    def test_no_rapl_limit(self, ryzen):
        assert not ryzen.has_rapl_limit

    def test_per_core_energy(self, ryzen):
        assert ryzen.has_per_core_energy

    def test_reference_frequency(self, ryzen):
        assert ryzen.reference_frequency_mhz == 3000.0

    def test_policy_floor_is_800(self, ryzen):
        """The paper's P-state remapping floors Ryzen at 800 MHz."""
        assert ryzen.policy_floor_mhz == 800.0


class TestCommonBehaviour:
    def test_core_ids(self, platform):
        assert list(platform.core_ids()) == list(range(platform.n_cores))

    def test_validate_core_ok(self, platform):
        platform.validate_core(0)
        platform.validate_core(platform.n_cores - 1)

    def test_validate_core_out_of_range(self, platform):
        with pytest.raises(PlatformError):
            platform.validate_core(platform.n_cores)
        with pytest.raises(PlatformError):
            platform.validate_core(-1)

    def test_avx_effective_max(self, platform):
        assert (
            platform.effective_max_frequency_mhz(True)
            == platform.avx_max_frequency_mhz
        )
        assert (
            platform.effective_max_frequency_mhz(False)
            == platform.max_frequency_mhz
        )

    def test_turbo_bins_sorted(self, platform):
        keys = [k for k, _ in platform.turbo_bins]
        assert keys == sorted(keys)

    def test_policy_floor_at_least_hw_min(self, platform):
        assert platform.policy_floor_mhz >= platform.min_frequency_mhz

    def test_dynamic_range_frequency(self, platform):
        """Paper section 5.2: frequency varies by a factor of 3-4 within
        the nominal range, more including boost."""
        ratio = platform.max_frequency_mhz / platform.min_frequency_mhz
        assert ratio >= 2.7


class TestRegistry:
    def test_lookup_by_alias(self):
        assert get_platform("skylake").name == "skylake-xeon-4114"
        assert get_platform("ryzen").name == "ryzen-1700x"

    def test_lookup_case_insensitive(self):
        assert get_platform("SKYLAKE").name == "skylake-xeon-4114"

    def test_lookup_full_name(self):
        assert get_platform("ryzen-1700x").n_cores == 8

    def test_unknown_platform_raises(self):
        with pytest.raises(ConfigError, match="unknown platform"):
            get_platform("epyc")

    def test_registry_builds_fresh_objects(self):
        assert get_platform("skylake") is not get_platform("skylake")

    def test_registry_contents(self):
        assert set(PLATFORM_REGISTRY) >= {"skylake", "ryzen"}

    def test_factories_match_registry(self):
        assert skylake_xeon_4114().vendor == "intel"
        assert ryzen_1700x().vendor == "amd"
