"""Tests for repro.units: conversions, clamping, quantization, stats."""

import pytest

from repro import units
from repro.units import (
    clamp,
    ghz,
    joules_to_uj,
    khz_to_mhz,
    mhz_to_ghz,
    mhz_to_khz,
    normalize,
    percentile,
    quantize_down,
    quantize_nearest,
    uj_to_joules,
    weighted_mean,
)


class TestConversions:
    def test_ghz_to_mhz(self):
        assert ghz(2.2) == 2200.0

    def test_mhz_to_ghz_roundtrip(self):
        assert mhz_to_ghz(ghz(3.4)) == pytest.approx(3.4)

    def test_mhz_to_khz_is_integer(self):
        assert mhz_to_khz(800.0) == 800_000
        assert isinstance(mhz_to_khz(800.0), int)

    def test_khz_to_mhz_roundtrip(self):
        assert khz_to_mhz(mhz_to_khz(2250.0)) == pytest.approx(2250.0)

    def test_fractional_mhz_to_khz_rounds(self):
        assert mhz_to_khz(0.0015) == 2

    def test_joules_to_uj(self):
        assert joules_to_uj(1.0) == 1_000_000

    def test_uj_to_joules_roundtrip(self):
        assert uj_to_joules(joules_to_uj(42.5)) == pytest.approx(42.5)

    def test_tick_default_is_one_ms(self):
        assert units.DEFAULT_TICK_SECONDS == pytest.approx(1e-3)


class TestClamp:
    def test_inside(self):
        assert clamp(5.0, 0.0, 10.0) == 5.0

    def test_below(self):
        assert clamp(-1.0, 0.0, 10.0) == 0.0

    def test_above(self):
        assert clamp(11.0, 0.0, 10.0) == 10.0

    def test_at_bounds(self):
        assert clamp(0.0, 0.0, 10.0) == 0.0
        assert clamp(10.0, 0.0, 10.0) == 10.0

    def test_empty_interval_raises(self):
        with pytest.raises(ValueError):
            clamp(5.0, 10.0, 0.0)


class TestQuantize:
    GRID = [800.0, 900.0, 1000.0, 1100.0]

    def test_down_exact(self):
        assert quantize_down(900.0, self.GRID) == 900.0

    def test_down_between(self):
        assert quantize_down(999.0, self.GRID) == 900.0

    def test_down_below_grid_snaps_to_lowest(self):
        assert quantize_down(100.0, self.GRID) == 800.0

    def test_down_above_grid_snaps_to_highest(self):
        assert quantize_down(5000.0, self.GRID) == 1100.0

    def test_nearest_rounds_to_closest(self):
        assert quantize_nearest(960.0, self.GRID) == 1000.0
        assert quantize_nearest(940.0, self.GRID) == 900.0

    def test_nearest_tie_prefers_lower(self):
        assert quantize_nearest(950.0, self.GRID) == 900.0

    def test_empty_grid_raises(self):
        with pytest.raises(ValueError):
            quantize_down(900.0, [])
        with pytest.raises(ValueError):
            quantize_nearest(900.0, [])


class TestStats:
    def test_weighted_mean(self):
        assert weighted_mean([1.0, 3.0], [1.0, 1.0]) == pytest.approx(2.0)

    def test_weighted_mean_weights_matter(self):
        assert weighted_mean([1.0, 3.0], [3.0, 1.0]) == pytest.approx(1.5)

    def test_weighted_mean_zero_weight_raises(self):
        with pytest.raises(ValueError):
            weighted_mean([1.0], [0.0])

    def test_percentile_median(self):
        assert percentile([1, 2, 3, 4, 5], 50) == 3

    def test_percentile_interpolates(self):
        assert percentile([0.0, 10.0], 25) == pytest.approx(2.5)

    def test_percentile_extremes(self):
        data = [5.0, 1.0, 3.0]
        assert percentile(data, 0) == 1.0
        assert percentile(data, 100) == 5.0

    def test_percentile_single_sample(self):
        assert percentile([7.0], 90) == 7.0

    def test_percentile_unsorted_input(self):
        assert percentile([9, 1, 5], 50) == 5

    def test_percentile_empty_raises(self):
        with pytest.raises(ValueError):
            percentile([], 50)

    def test_percentile_out_of_range_raises(self):
        with pytest.raises(ValueError):
            percentile([1.0], 101)

    def test_normalize(self):
        assert normalize([1.0, 3.0]) == [0.25, 0.75]

    def test_normalize_zero_total_raises(self):
        with pytest.raises(ValueError):
            normalize([0.0, 0.0])
