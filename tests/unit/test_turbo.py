"""Tests for the opportunistic-scaling (turbo/XFR) model."""

import pytest

from repro.errors import PlatformError
from repro.hw.turbo import TurboModel


class TestSkylakeTurbo:
    def test_single_core_gets_max_turbo(self, skylake):
        assert TurboModel(skylake).ceiling_mhz(1) == 3000.0

    def test_ceiling_steps_down_with_active_cores(self, skylake):
        turbo = TurboModel(skylake)
        ceilings = [turbo.ceiling_mhz(n) for n in range(1, 11)]
        assert all(b <= a for a, b in zip(ceilings, ceilings[1:]))

    def test_all_core_turbo_above_nominal(self, skylake):
        """The Xeon 4114 sustains 2.5 GHz on all cores (Fig 4 setup)."""
        assert TurboModel(skylake).ceiling_mhz(10) == 2500.0
        assert 2500.0 > skylake.max_nominal_frequency_mhz

    def test_three_active_cores(self, skylake):
        """3 active cores reach 2.8 GHz — the opportunistic boost HP apps
        get at 40 W in Fig 7 when 7 LP apps are starved."""
        assert TurboModel(skylake).ceiling_mhz(3) == 2800.0


class TestRyzenTurbo:
    def test_xfr_two_cores(self, ryzen):
        turbo = TurboModel(ryzen)
        assert turbo.ceiling_mhz(1) == 3800.0
        assert turbo.ceiling_mhz(2) == 3800.0

    def test_all_core_boost(self, ryzen):
        assert TurboModel(ryzen).ceiling_mhz(8) == 3500.0


class TestGrant:
    def test_grant_clips_to_ceiling(self, skylake):
        turbo = TurboModel(skylake)
        assert turbo.grant(3000.0, 10) == 2500.0

    def test_grant_passes_low_requests(self, skylake):
        turbo = TurboModel(skylake)
        assert turbo.grant(1200.0, 10) == 1200.0

    def test_zero_active_treated_as_one(self, skylake):
        turbo = TurboModel(skylake)
        assert turbo.ceiling_mhz(0) == turbo.ceiling_mhz(1)

    def test_negative_active_rejected(self, skylake):
        with pytest.raises(PlatformError):
            TurboModel(skylake).ceiling_mhz(-1)

    def test_has_turbo(self, platform):
        assert TurboModel(platform).has_turbo
