"""Tests for the closed-loop websearch cluster model."""

import pytest

from repro.errors import ConfigError
from repro.workloads.cpuburn import cpuburn
from repro.workloads.websearch import WebsearchCluster, WebsearchConfig


def small_cluster(**overrides) -> WebsearchCluster:
    config = dict(n_users=40, think_time_s=0.5, seed=7)
    config.update(overrides)
    return WebsearchCluster([0, 1, 2], WebsearchConfig(**config))


def drive(cluster, seconds, freq_mhz=3000.0, dt=2e-3):
    freqs = {c: freq_mhz for c in cluster.core_ids}
    steps = int(seconds / dt)
    for _ in range(steps):
        cluster.advance(dt, freqs)


class TestConfig:
    def test_defaults_valid(self):
        assert WebsearchConfig().n_users == 300

    def test_zero_users_rejected(self):
        with pytest.raises(ConfigError):
            WebsearchConfig(n_users=0)

    def test_negative_mem_rejected(self):
        with pytest.raises(ConfigError):
            WebsearchConfig(service_mem_s=-1.0)

    def test_service_time_scales_with_frequency(self):
        config = WebsearchConfig()
        assert config.service_time_s(1500.0) > config.service_time_s(3000.0)

    def test_service_time_has_fixed_floor(self):
        """The memory part does not shrink with frequency."""
        config = WebsearchConfig()
        assert config.service_time_s(1e9) >= config.service_mem_s


class TestClusterSetup:
    def test_needs_cores(self):
        with pytest.raises(ConfigError):
            WebsearchCluster([])

    def test_duplicate_cores_rejected(self):
        with pytest.raises(ConfigError):
            WebsearchCluster([1, 1])

    def test_latency_before_completions_raises(self):
        cluster = small_cluster()
        with pytest.raises(ConfigError):
            cluster.latency_percentile()


class TestServing:
    def test_completes_requests(self):
        cluster = small_cluster()
        drive(cluster, 5.0)
        assert cluster.completed_requests > 0

    def test_closed_loop_throughput_bounded_by_users(self):
        """N users with think time Z cap throughput at N/Z."""
        cluster = small_cluster()
        drive(cluster, 10.0)
        assert cluster.throughput() <= 40 / 0.5 * 1.05

    def test_latency_increases_when_throttled(self):
        fast = small_cluster()
        slow = small_cluster()
        drive(fast, 10.0, freq_mhz=3000.0)
        drive(slow, 10.0, freq_mhz=900.0)
        assert (
            slow.latency_percentile(90.0) > fast.latency_percentile(90.0)
        )

    def test_parked_core_serves_nothing(self):
        cluster = small_cluster()
        freqs = {0: 3000.0, 1: 3000.0}  # core 2 absent = parked
        for _ in range(1000):
            cluster.advance(5e-3, freqs)
        busy, _instr = cluster.take_core_sample(2)
        assert busy == 0.0

    def test_utilization_rises_when_throttled(self):
        fast = small_cluster()
        slow = small_cluster()
        drive(fast, 10.0, freq_mhz=3000.0)
        drive(slow, 10.0, freq_mhz=1000.0)
        assert (
            slow.core_utilization(0) > fast.core_utilization(0)
        )

    def test_take_core_sample_consumes(self):
        cluster = small_cluster()
        drive(cluster, 2.0)
        busy1, instr1 = cluster.take_core_sample(0)
        busy2, instr2 = cluster.take_core_sample(0)
        assert busy1 > 0 and instr1 > 0
        assert busy2 == 0 and instr2 == 0

    def test_utilization_survives_sampling(self):
        cluster = small_cluster()
        drive(cluster, 2.0)
        cluster.take_core_sample(0)
        assert cluster.core_utilization(0) > 0

    def test_reset_latency_window(self):
        cluster = small_cluster()
        drive(cluster, 3.0)
        cluster.reset_latency_window()
        assert cluster.latencies() == []
        # completions keep accumulating
        assert cluster.completed_requests > 0

    def test_deterministic_given_seed(self):
        a = small_cluster(seed=11)
        b = small_cluster(seed=11)
        drive(a, 3.0)
        drive(b, 3.0)
        assert a.completed_requests == b.completed_requests
        assert a.latencies() == b.latencies()

    def test_different_seeds_differ(self):
        a = small_cluster(seed=1)
        b = small_cluster(seed=2)
        drive(a, 3.0)
        drive(b, 3.0)
        assert a.latencies() != b.latencies()

    def test_nonpositive_dt_rejected(self):
        cluster = small_cluster()
        with pytest.raises(ConfigError):
            cluster.advance(0.0, {0: 3000.0})

    def test_latency_includes_queueing(self):
        """Under overload the 90th percentile far exceeds one service
        time."""
        cluster = small_cluster(n_users=200, think_time_s=0.2)
        drive(cluster, 10.0, freq_mhz=800.0)
        service = cluster.config.service_time_s(800.0)
        assert cluster.latency_percentile(90.0) > 2 * service


class TestCalibration:
    def test_nine_cores_draw_about_44w_at_3ghz(self, skylake):
        """Paper section 3.2: websearch consumed 44 W with 9 active cores
        at 3 GHz.  Check the modelled busy fraction and c_eff land in
        that neighbourhood through the power model."""
        from repro.sim.power_model import core_power_watts

        cluster = WebsearchCluster(list(range(9)), WebsearchConfig())
        freqs = {c: 3000.0 for c in cluster.core_ids}
        for _ in range(int(20.0 / 5e-3)):
            cluster.advance(5e-3, freqs)
        utils = [cluster.core_utilization(c) for c in cluster.core_ids]
        total = sum(
            core_power_watts(skylake, 3000.0, cluster.config.c_eff, u)
            for u in utils
        )
        assert 25.0 <= total <= 60.0


class TestCpuburn:
    def test_runs_forever(self):
        assert cpuburn().instructions is None

    def test_no_memory_stalls(self):
        assert cpuburn().mem_fraction == 0.0

    def test_highest_demand_in_catalog(self):
        from repro.workloads.spec import SPEC_BENCHMARKS

        assert cpuburn().c_eff > max(
            app.c_eff for app in SPEC_BENCHMARKS.values()
        )

    def test_about_32w_at_3ghz(self, skylake):
        """Paper: cpuburn drew 32 W on one core at 3 GHz."""
        from repro.sim.power_model import core_power_watts

        burn = cpuburn()
        c_eff = burn.c_eff * burn.activity_power_factor(3000.0, 2200.0)
        power = core_power_watts(skylake, 3000.0, c_eff, 1.0)
        assert 27.0 <= power <= 37.0
