"""Tests for the simulation engine and periodic callbacks."""

import pytest

from repro.errors import SimulationError
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine


@pytest.fixture
def engine(skylake):
    return SimEngine(Chip(skylake))


class TestRun:
    def test_run_advances_time(self, engine):
        engine.run(0.05)
        assert engine.time_s == pytest.approx(0.05)

    def test_run_ticks(self, engine):
        engine.run_ticks(7)
        assert engine.time_s == pytest.approx(7e-3)

    def test_negative_duration_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.run(-1.0)


class TestPeriodics:
    def test_callback_cadence(self, engine):
        calls = []
        engine.every(0.010, calls.append)
        engine.run(0.1)
        assert len(calls) == 10

    def test_callback_sees_sim_time(self, engine):
        times = []
        engine.every(0.010, times.append)
        engine.run(0.03)
        assert times == pytest.approx([0.01, 0.02, 0.03])

    def test_first_fire_after_one_period(self, engine):
        calls = []
        engine.every(0.02, calls.append)
        engine.run(0.019)
        assert calls == []
        engine.run(0.002)
        assert len(calls) == 1

    def test_phase_delays_first_call(self, engine):
        calls = []
        engine.every(0.01, calls.append, phase_s=0.05)
        engine.run(0.04)
        assert calls == []
        engine.run(0.02)
        assert len(calls) >= 1

    def test_multiple_periodics_independent(self, engine):
        fast, slow = [], []
        engine.every(0.01, fast.append)
        engine.every(0.05, slow.append)
        engine.run(0.1)
        assert len(fast) == 10
        assert len(slow) == 2

    def test_subtick_period_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.every(1e-6, lambda t: None)

    def test_phase_zero_fires_at_next_tick(self, engine):
        calls = []
        engine.every(0.02, calls.append, phase_s=0.0)
        engine.run_ticks(1)
        assert len(calls) == 1
        assert calls[0] == pytest.approx(engine.chip.tick_s)

    def test_subtick_nonzero_phase_rejected(self, engine):
        # a phase below one tick cannot be honoured; it must not be
        # silently rewritten to something else
        with pytest.raises(SimulationError):
            engine.every(0.02, lambda t: None, phase_s=1e-6)

    def test_negative_phase_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.every(0.02, lambda t: None, phase_s=-0.01)


class TestGates:
    def test_none_gate_result_fires(self, engine):
        calls = []
        engine.every(0.01, calls.append, gate=lambda now: None)
        engine.run(0.05)
        assert len(calls) == 5

    def test_drop_skips_a_full_period(self, engine):
        verdicts = iter(["drop", "fire", "fire"])
        calls = []
        engine.every(0.01, calls.append, gate=lambda now: next(verdicts))
        engine.run(0.03)
        # deadline 1 dropped; next due a full period later at 0.02
        assert calls == pytest.approx([0.02, 0.03])

    def test_delay_defers_by_seconds(self, engine):
        verdicts = iter([0.005, "fire"])
        calls = []
        engine.every(0.01, calls.append, gate=lambda now: next(verdicts))
        engine.run(0.016)
        assert calls == pytest.approx([0.015])

    def test_zero_delay_defers_one_tick(self, engine):
        verdicts = iter([0.0, "fire"])
        calls = []
        engine.every(0.01, calls.append, gate=lambda now: next(verdicts))
        engine.run(0.02)
        assert calls[0] == pytest.approx(0.01 + engine.chip.tick_s)

    def test_negative_delay_rejected(self, engine):
        engine.every(0.01, lambda t: None, gate=lambda now: -1.0)
        with pytest.raises(SimulationError):
            engine.run(0.01)

    def test_gate_consulted_per_deadline_not_per_tick(self, engine):
        consulted = []

        def gate(now):
            consulted.append(now)
            return "fire"

        engine.every(0.01, lambda t: None, gate=gate)
        engine.run(0.03)
        assert len(consulted) == 3


class TestOneShots:
    def test_fires_once_at_time(self, engine):
        calls = []
        engine.at(0.02, calls.append)
        engine.run(0.05)
        assert calls == pytest.approx([0.02])

    def test_past_time_rejected(self, engine):
        engine.run(0.05)
        with pytest.raises(SimulationError):
            engine.at(0.01, lambda t: None)

    def test_fires_alongside_periodic(self, engine):
        order = []
        engine.every(0.02, lambda t: order.append("periodic"))
        engine.at(0.02, lambda t: order.append("oneshot"))
        engine.run(0.02)
        assert order == ["periodic", "oneshot"]

    def test_oneshot_can_schedule_another(self, engine):
        calls = []

        def first(now):
            calls.append(now)
            engine.at(now + 0.01, calls.append)

        engine.at(0.01, first)
        engine.run(0.03)
        assert calls == pytest.approx([0.01, 0.02])

    def test_counters_flushed_before_callback(self, skylake):
        """A periodic reading the MSR file must see fresh counters."""
        from repro.hw import msr as msrdef
        from repro.sim.core import BatchCoreLoad
        from repro.workloads.app import RunningApp
        from repro.workloads.spec import spec_app

        chip = Chip(skylake)
        engine = SimEngine(chip)
        chip.assign_load(
            0, BatchCoreLoad(RunningApp(spec_app("gcc", steady=True)), 2200.0)
        )
        chip.set_requested_frequency(0, 2200.0)
        seen = []
        engine.every(
            0.05,
            lambda t: seen.append(chip.msr.read(0, msrdef.IA32_FIXED_CTR0)),
        )
        engine.run(0.15)
        assert all(b > a for a, b in zip(seen, seen[1:]))


class TestRunUntil:
    def test_condition_met(self, engine):
        ok = engine.run_until(lambda: engine.time_s >= 0.01,
                              max_duration_s=1.0)
        assert ok
        assert engine.time_s < 0.02

    def test_timeout(self, engine):
        ok = engine.run_until(lambda: False, max_duration_s=0.01)
        assert not ok
