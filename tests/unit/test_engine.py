"""Tests for the simulation engine and periodic callbacks."""

import pytest

from repro.errors import SimulationError
from repro.sim.chip import Chip
from repro.sim.engine import SimEngine


@pytest.fixture
def engine(skylake):
    return SimEngine(Chip(skylake))


class TestRun:
    def test_run_advances_time(self, engine):
        engine.run(0.05)
        assert engine.time_s == pytest.approx(0.05)

    def test_run_ticks(self, engine):
        engine.run_ticks(7)
        assert engine.time_s == pytest.approx(7e-3)

    def test_negative_duration_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.run(-1.0)


class TestPeriodics:
    def test_callback_cadence(self, engine):
        calls = []
        engine.every(0.010, calls.append)
        engine.run(0.1)
        assert len(calls) == 10

    def test_callback_sees_sim_time(self, engine):
        times = []
        engine.every(0.010, times.append)
        engine.run(0.03)
        assert times == pytest.approx([0.01, 0.02, 0.03])

    def test_first_fire_after_one_period(self, engine):
        calls = []
        engine.every(0.02, calls.append)
        engine.run(0.019)
        assert calls == []
        engine.run(0.002)
        assert len(calls) == 1

    def test_phase_delays_first_call(self, engine):
        calls = []
        engine.every(0.01, calls.append, phase_s=0.05)
        engine.run(0.04)
        assert calls == []
        engine.run(0.02)
        assert len(calls) >= 1

    def test_multiple_periodics_independent(self, engine):
        fast, slow = [], []
        engine.every(0.01, fast.append)
        engine.every(0.05, slow.append)
        engine.run(0.1)
        assert len(fast) == 10
        assert len(slow) == 2

    def test_subtick_period_rejected(self, engine):
        with pytest.raises(SimulationError):
            engine.every(1e-6, lambda t: None)

    def test_counters_flushed_before_callback(self, skylake):
        """A periodic reading the MSR file must see fresh counters."""
        from repro.hw import msr as msrdef
        from repro.sim.core import BatchCoreLoad
        from repro.workloads.app import RunningApp
        from repro.workloads.spec import spec_app

        chip = Chip(skylake)
        engine = SimEngine(chip)
        chip.assign_load(
            0, BatchCoreLoad(RunningApp(spec_app("gcc", steady=True)), 2200.0)
        )
        chip.set_requested_frequency(0, 2200.0)
        seen = []
        engine.every(
            0.05,
            lambda t: seen.append(chip.msr.read(0, msrdef.IA32_FIXED_CTR0)),
        )
        engine.run(0.15)
        assert all(b > a for a, b in zip(seen, seen[1:]))


class TestRunUntil:
    def test_condition_met(self, engine):
        ok = engine.run_until(lambda: engine.time_s >= 0.01,
                              max_duration_s=1.0)
        assert ok
        assert engine.time_s < 0.02

    def test_timeout(self, engine):
        ok = engine.run_until(lambda: False, max_duration_s=0.01)
        assert not ok
