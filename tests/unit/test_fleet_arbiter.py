"""Unit tests for the hierarchical fleet arbiter.

The contract under test: the FleetArbiter is a drop-in
:class:`~repro.cluster.arbiter.ClusterArbiter` whose grants honour the
budget invariant at every tree depth, whose incremental dirty-subtree
path agrees with full recomputation to within the documented pool
deadband, and whose caches ride snapshots so crash recovery replays
the same reuse decisions byte for byte.
"""

import math

import pytest

from repro.cluster import ClusterArbiter, ClusterConfig, NodeSpec
from repro.cluster.node import NodeEpochReport
from repro.config import AppSpec
from repro.errors import ConfigError
from repro.fleet import grid_topology
from repro.fleet.arbiter import POOL_SLACK_W, FleetArbiter, make_arbiter

APPS = tuple(AppSpec("cactusBSSN", shares=50.0) for _ in range(4))


def fleet_config(rows=2, racks=2, rack_nodes=2, budget_w=220.0, **kwargs):
    topology, names = grid_topology(rows, racks, rack_nodes)
    nodes = tuple(
        NodeSpec(name=n, apps=APPS, min_cap_w=10.0, max_cap_w=45.0)
        for n in names
    )
    return ClusterConfig(
        budget_w=budget_w, nodes=nodes, topology=topology, **kwargs
    )


def report(name, epoch, power, *, cap=45.0, throttle=0.0, samples=10,
           crashed=False):
    return NodeEpochReport(
        name=name,
        epoch=epoch,
        t_end_s=(epoch + 1) * 1.0,
        cap_w=cap,
        mean_power_w=power,
        throttle_pressure=throttle,
        headroom_w=max(cap - power, 0.0),
        parked_cores=0,
        quarantined_cores=0,
        samples=samples,
        crashed=crashed,
    )


def demand_wave(config, epoch, *, jitter=0.0):
    """Deterministic per-node demand, optionally watt-jittered.

    The bases are multiples of 0.4 W, so after the arbiter's 1.25x
    demand slack they land exactly on the 0.5 W quantization grid and
    jitter below 0.2 W provably re-quantizes to the same claim.
    """
    reports = {}
    for index, spec in enumerate(config.nodes):
        base = 16.0 + 2.0 * (index % 5)
        wobble = jitter * math.sin(epoch * 1.7 + index)
        reports[spec.name] = report(spec.name, epoch, base + wobble)
    return reports


class TestDispatch:
    def test_make_arbiter_picks_fleet_for_topology(self):
        assert isinstance(make_arbiter(fleet_config()), FleetArbiter)

    def test_make_arbiter_picks_flat_without(self):
        config = ClusterConfig(
            budget_w=100.0,
            nodes=(NodeSpec("a", apps=APPS, min_cap_w=10.0),),
        )
        arbiter = make_arbiter(config)
        assert type(arbiter) is ClusterArbiter

    def test_fleet_arbiter_requires_topology(self):
        config = ClusterConfig(
            budget_w=100.0,
            nodes=(NodeSpec("a", apps=APPS, min_cap_w=10.0),),
        )
        with pytest.raises(ConfigError, match="topology"):
            FleetArbiter(config)


class TestInvariants:
    def test_budget_and_bounds_hold_every_epoch(self):
        config = fleet_config()
        arbiter = FleetArbiter(config)
        arbiter.admit([s.name for s in config.nodes])
        grant = arbiter.rebalance(0, {})
        for epoch in range(1, 10):
            assert grant.total_w <= config.budget_w + 1e-9
            arbiter.check_invariant()
            arbiter.check_invariant(full=True)
            for name, cap in grant.caps_w.items():
                assert 10.0 - 1e-9 <= cap <= 45.0 + 1e-9
            grant = arbiter.rebalance(
                epoch, demand_wave(config, epoch, jitter=2.0)
            )

    def test_rack_ceiling_bounds_the_rack_grant(self):
        topology, names = grid_topology(1, 2, 2, rack_ceiling_w=55.0)
        nodes = tuple(
            NodeSpec(name=n, apps=APPS, min_cap_w=10.0, max_cap_w=45.0)
            for n in names
        )
        config = ClusterConfig(
            budget_w=500.0, nodes=nodes, topology=topology
        )
        arbiter = FleetArbiter(config)
        arbiter.admit(list(names))
        arbiter.rebalance(0, {})
        grant = arbiter.rebalance(
            1, {n: report(n, 1, 40.0, throttle=0.5) for n in names}
        )
        for rack in ("row0/rack0", "row0/rack1"):
            rack_sum = sum(
                cap for name, cap in grant.caps_w.items()
                if name.startswith(rack)
            )
            assert rack_sum <= 55.0 + 1e-9

    def test_contention_sheds_low_entitlement_members_to_floors(self):
        # budget barely above the floor sum plus heterogeneous shares:
        # the low-shares member of each rack must lose the bet
        topology, names = grid_topology(2, 2, 2)
        nodes = tuple(
            NodeSpec(
                name=n,
                apps=APPS,
                shares=3.0 if i % 2 == 0 else 1.0,
                min_cap_w=10.0,
                max_cap_w=45.0,
            )
            for i, n in enumerate(names)
        )
        config = ClusterConfig(
            budget_w=8 * 10.0 + 12.0, nodes=nodes, topology=topology
        )
        arbiter = FleetArbiter(config)
        names = [s.name for s in config.nodes]
        arbiter.admit(names)
        arbiter.rebalance(0, {})
        grant = arbiter.rebalance(
            1, {n: report(n, 1, 40.0, throttle=0.8) for n in names}
        )
        assert grant.total_w <= config.budget_w + 1e-9
        assert grant.shed  # contention surfaced, not silently floored
        for name in grant.shed:
            assert grant.caps_w[name] == pytest.approx(10.0, abs=1e-6)

    def test_crashed_reporter_leaves_the_tree(self):
        config = fleet_config()
        arbiter = FleetArbiter(config)
        names = [s.name for s in config.nodes]
        arbiter.admit(names)
        arbiter.rebalance(0, {})
        dead = names[0]
        reports = demand_wave(config, 1)
        reports[dead] = report(dead, 1, 20.0, crashed=True)
        grant = arbiter.rebalance(1, reports)
        assert dead not in grant.caps_w
        arbiter.check_invariant(full=True)


class TestIncremental:
    def test_steady_demand_reuses_every_rack(self):
        config = fleet_config()
        arbiter = FleetArbiter(config)
        names = [s.name for s in config.nodes]
        arbiter.admit(names)
        arbiter.rebalance(0, {})
        arbiter.rebalance(1, demand_wave(config, 1))
        # sub-quantum jitter: claims re-quantize to the same grid point,
        # every rack stays clean, every fill is reused
        for epoch in range(2, 6):
            grant = arbiter.rebalance(
                epoch, demand_wave(config, epoch, jitter=0.1)
            )
            assert grant.fleet_stats["reused"] == 4
            assert grant.fleet_stats["refilled"] == 0

    def test_demand_step_dirties_only_its_rack(self):
        config = fleet_config()
        arbiter = FleetArbiter(config)
        names = [s.name for s in config.nodes]
        arbiter.admit(names)
        arbiter.rebalance(0, {})
        arbiter.rebalance(1, demand_wave(config, 1))
        reports = demand_wave(config, 2)
        mover = names[0]
        reports[mover] = report(mover, 2, 38.0, throttle=0.6)
        grant = arbiter.rebalance(2, reports)
        assert grant.fleet_stats["dirty_nodes"] == 1
        assert grant.fleet_stats["refilled"] >= 1
        # the other racks reuse unless the mover shifted their pools
        # beyond the deadband
        assert (
            grant.fleet_stats["refilled"] + grant.fleet_stats["reused"]
            == 4
        )

    def test_incremental_matches_full_within_deadband(self):
        config = fleet_config(rows=2, racks=3, rack_nodes=3,
                              budget_w=300.0)
        names = [s.name for s in config.nodes]
        incremental = FleetArbiter(config)
        full = FleetArbiter(config)
        full.incremental = False
        incremental.admit(names)
        full.admit(names)
        for epoch in range(10):
            reports = demand_wave(config, epoch, jitter=1.5)
            a = incremental.rebalance(epoch, reports)
            b = full.rebalance(epoch, reports)
            assert set(a.caps_w) == set(b.caps_w)
            for name in a.caps_w:
                assert abs(a.caps_w[name] - b.caps_w[name]) <= (
                    POOL_SLACK_W + 1e-6
                )
            assert b.fleet_stats["reused"] == 0

    def test_first_epoch_is_exact(self):
        config = fleet_config()
        names = [s.name for s in config.nodes]
        incremental = FleetArbiter(config)
        full = FleetArbiter(config)
        full.incremental = False
        incremental.admit(names)
        full.admit(names)
        reports = demand_wave(config, 0)
        a = incremental.rebalance(0, reports)
        b = full.rebalance(0, reports)
        assert a.caps_w == b.caps_w


class TestSnapshot:
    def test_restored_arbiter_replays_identically(self):
        config = fleet_config()
        names = [s.name for s in config.nodes]
        arbiter = FleetArbiter(config)
        arbiter.admit(names)
        for epoch in range(4):
            arbiter.rebalance(
                epoch, demand_wave(config, epoch, jitter=1.0)
            )
        state = arbiter.snapshot()

        clone = FleetArbiter(config)
        clone.restore(state)
        for epoch in range(4, 9):
            reports = demand_wave(config, epoch, jitter=1.0)
            a = arbiter.rebalance(epoch, reports)
            b = clone.rebalance(epoch, reports)
            assert a == b  # caps, pools, shed, stats: reuse decisions too

    def test_snapshot_round_trips_through_json(self):
        import json

        from repro.cluster.journal import (
            _arbiter_from_jsonable,
            _arbiter_to_jsonable,
        )

        config = fleet_config()
        names = [s.name for s in config.nodes]
        arbiter = FleetArbiter(config)
        arbiter.admit(names)
        for epoch in range(3):
            arbiter.rebalance(epoch, demand_wave(config, epoch))
        state = arbiter.snapshot()
        wire = json.loads(json.dumps(_arbiter_to_jsonable(state)))
        clone = FleetArbiter(config)
        clone.restore(_arbiter_from_jsonable(wire))
        reports = demand_wave(config, 3)
        assert arbiter.rebalance(3, reports) == clone.rebalance(3, reports)
