"""Tests for the Ryzen three-P-state selection utility."""

import pytest

from repro.core.pstate_select import _kmeans_1d, select_pstate_levels
from repro.errors import ConfigError


class TestKmeans:
    def test_separates_clear_clusters(self):
        values = [800.0, 810.0, 2000.0, 2010.0, 3400.0, 3410.0]
        centroids = sorted(_kmeans_1d(values, 3))
        assert centroids[0] == pytest.approx(805.0)
        assert centroids[1] == pytest.approx(2005.0)
        assert centroids[2] == pytest.approx(3405.0)

    def test_fewer_values_than_k(self):
        centroids = _kmeans_1d([1000.0], 3)
        assert 1000.0 in centroids

    def test_deterministic(self):
        values = [400.0, 1500.0, 2700.0, 3400.0, 900.0]
        assert _kmeans_1d(values, 3) == _kmeans_1d(values, 3)


class TestSelection:
    def test_passthrough_within_budget(self, ryzen):
        targets = {"a": 800.0, "b": 2000.0, "c": 3400.0}
        out = select_pstate_levels(ryzen, targets)
        assert out == targets

    def test_reduces_to_three_levels(self, ryzen):
        targets = {f"a{i}": 800.0 + i * 350.0 for i in range(8)}
        out = select_pstate_levels(ryzen, targets)
        assert len(set(out.values())) <= 3

    def test_levels_on_grid(self, ryzen):
        targets = {f"a{i}": 811.0 + i * 333.3 for i in range(8)}
        out = select_pstate_levels(ryzen, targets)
        grid = set(ryzen.pstates.frequencies_mhz)
        assert set(out.values()) <= grid

    def test_each_app_mapped_to_nearest_level(self, ryzen):
        targets = {"lo": 800.0, "lo2": 850.0, "mid": 2000.0,
                   "hi": 3400.0, "hi2": 3300.0}
        out = select_pstate_levels(ryzen, targets)
        assert out["lo"] < out["mid"] < out["hi"]
        assert abs(out["lo"] - out["lo2"]) < 300
        assert abs(out["hi"] - out["hi2"]) < 300

    def test_skylake_only_quantizes(self, skylake):
        targets = {f"a{i}": 811.0 + i * 211.0 for i in range(10)}
        out = select_pstate_levels(skylake, targets)
        assert len(set(out.values())) == len(set(
            skylake.pstates.quantize(v, nearest=True).frequency_mhz
            for v in targets.values()
        ))

    def test_quantizes_off_grid_inputs(self, ryzen):
        out = select_pstate_levels(ryzen, {"a": 1013.0})
        assert out["a"] in (1000.0, 1025.0)

    def test_empty_targets_rejected(self, ryzen):
        with pytest.raises(ConfigError):
            select_pstate_levels(ryzen, {})

    def test_identical_targets_single_level(self, ryzen):
        targets = {f"a{i}": 2000.0 for i in range(8)}
        out = select_pstate_levels(ryzen, targets)
        assert set(out.values()) == {2000.0}
