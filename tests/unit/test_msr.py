"""Tests for the MSR register file."""

import pytest

from repro.errors import MSRAddressError, MSRPermissionError, PlatformError
from repro.hw.msr import (
    ENERGY_COUNTER_MASK,
    MSRDef,
    MSRFile,
    U64_MASK,
    read_energy_delta,
)


@pytest.fixture
def msr():
    f = MSRFile(4)
    f.register(MSRDef(0x10, "COUNTER"))
    f.register(MSRDef(0x199, "CTL", writable=True))
    f.register(MSRDef(0x611, "PKG", package_scope=True))
    return f


class TestRegistration:
    def test_register_and_read_reset_value(self):
        f = MSRFile(1)
        f.register(MSRDef(0x10, "X", reset_value=42))
        assert f.read(0, 0x10) == 42

    def test_double_register_rejected(self, msr):
        with pytest.raises(MSRAddressError):
            msr.register(MSRDef(0x10, "DUP"))

    def test_is_registered(self, msr):
        assert msr.is_registered(0x10)
        assert not msr.is_registered(0xDEAD)

    def test_definition_lookup(self, msr):
        assert msr.definition(0x199).name == "CTL"

    def test_definition_unknown_raises(self, msr):
        with pytest.raises(MSRAddressError):
            msr.definition(0xDEAD)

    def test_zero_cpus_rejected(self):
        with pytest.raises(PlatformError):
            MSRFile(0)


class TestAccess:
    def test_unimplemented_read_raises(self, msr):
        with pytest.raises(MSRAddressError):
            msr.read(0, 0xDEAD)

    def test_cpu_out_of_range(self, msr):
        with pytest.raises(MSRAddressError):
            msr.read(4, 0x10)

    def test_write_readback(self, msr):
        msr.write(1, 0x199, 0x1600)
        assert msr.read(1, 0x199) == 0x1600

    def test_write_is_per_cpu(self, msr):
        msr.write(0, 0x199, 1)
        msr.write(1, 0x199, 2)
        assert msr.read(0, 0x199) == 1
        assert msr.read(1, 0x199) == 2

    def test_read_only_write_rejected(self, msr):
        with pytest.raises(MSRPermissionError):
            msr.write(0, 0x10, 1)

    def test_oversized_write_rejected(self, msr):
        with pytest.raises(MSRPermissionError):
            msr.write(0, 0x199, 1 << 64)

    def test_negative_write_rejected(self, msr):
        with pytest.raises(MSRPermissionError):
            msr.write(0, 0x199, -1)

    def test_write_hook_invoked(self):
        calls = []
        f = MSRFile(2)
        f.register(MSRDef(0x20, "H", writable=True,
                          on_write=lambda cpu, v: calls.append((cpu, v))))
        f.write(1, 0x20, 99)
        assert calls == [(1, 99)]


class TestPackageScope:
    def test_shared_across_cpus(self, msr):
        msr.poke(0, 0x611, 1234)
        assert msr.read(3, 0x611) == 1234

    def test_poke_any_cpu_aliases(self, msr):
        msr.poke(2, 0x611, 77)
        assert msr.read(0, 0x611) == 77


class TestCounters:
    def test_poke_bypasses_read_only(self, msr):
        msr.poke(0, 0x10, 5)
        assert msr.read(0, 0x10) == 5

    def test_poke_masks_to_64_bits(self, msr):
        msr.poke(0, 0x10, (1 << 70) | 5)
        assert msr.read(0, 0x10) == 5

    def test_advance_counter(self, msr):
        msr.advance_counter(0, 0x10, 10)
        msr.advance_counter(0, 0x10, 5)
        assert msr.read(0, 0x10) == 15

    def test_advance_counter_wraps(self, msr):
        msr.poke(0, 0x10, ENERGY_COUNTER_MASK)
        msr.advance_counter(0, 0x10, 2, wrap_mask=ENERGY_COUNTER_MASK)
        assert msr.read(0, 0x10) == 1

    def test_advance_negative_rejected(self, msr):
        with pytest.raises(MSRPermissionError):
            msr.advance_counter(0, 0x10, -1)


class TestEnergyDelta:
    def test_simple_delta(self):
        assert read_energy_delta(100, 150) == 50

    def test_wraparound_delta(self):
        before = ENERGY_COUNTER_MASK - 10
        after = 5
        assert read_energy_delta(before, after) == 16

    def test_zero_delta(self):
        assert read_energy_delta(7, 7) == 0

    def test_u64_mask_constant(self):
        assert U64_MASK == (1 << 64) - 1
