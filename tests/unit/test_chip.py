"""Tests for the chip model: frequency resolution, counters, enforcement."""

import pytest

from repro.errors import FrequencyError, MSRPermissionError, PlatformError
from repro.hw import msr as msrdef
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad
from repro.workloads.app import RunningApp
from repro.workloads.spec import spec_app


def load_app(chip, core_id, name="gcc"):
    app = RunningApp(spec_app(name, steady=True))
    chip.assign_load(
        core_id, BatchCoreLoad(app, chip.platform.reference_frequency_mhz)
    )
    return app


class TestFrequencyControl:
    def test_request_on_grid(self, sky_chip):
        sky_chip.set_requested_frequency(0, 1500.0)
        assert sky_chip.requested_frequency(0) == 1500.0

    def test_off_grid_rejected(self, sky_chip):
        with pytest.raises(FrequencyError):
            sky_chip.set_requested_frequency(0, 1550.0)

    def test_bad_core_rejected(self, sky_chip):
        with pytest.raises(PlatformError):
            sky_chip.set_requested_frequency(99, 800.0)

    def test_effective_tracks_request_when_unconstrained(self, sky_chip):
        load_app(sky_chip, 0)
        sky_chip.set_requested_frequency(0, 1500.0)
        sky_chip.run_ticks(2)
        assert sky_chip.effective_frequency(0) == 1500.0

    def test_avx_cap_applies(self, sky_chip):
        load_app(sky_chip, 0, "cam4")
        sky_chip.set_requested_frequency(0, 2200.0)
        sky_chip.run_ticks(2)
        assert (
            sky_chip.effective_frequency(0)
            == sky_chip.platform.avx_max_frequency_mhz
        )

    def test_turbo_ceiling_depends_on_active_cores(self, sky_chip):
        for core_id in range(10):
            load_app(sky_chip, core_id)
            sky_chip.set_requested_frequency(core_id, 3000.0)
        sky_chip.run_ticks(2)
        # 10 active cores: all-core turbo, not full 3.0 GHz
        assert sky_chip.effective_frequency(0) == 2500.0

    def test_single_core_full_turbo(self, sky_chip):
        load_app(sky_chip, 0)
        sky_chip.set_requested_frequency(0, 3000.0)
        sky_chip.run_ticks(2)
        assert sky_chip.effective_frequency(0) == 3000.0

    def test_parked_core_freq_zero(self, sky_chip):
        load_app(sky_chip, 0)
        sky_chip.park(0)
        sky_chip.run_ticks(1)
        assert sky_chip.effective_frequency(0) == 0.0

    def test_unpark_restores(self, sky_chip):
        load_app(sky_chip, 0)
        sky_chip.set_requested_frequency(0, 1200.0)
        sky_chip.park(0)
        sky_chip.run_ticks(1)
        sky_chip.park(0, False)
        sky_chip.run_ticks(1)
        assert sky_chip.effective_frequency(0) == 1200.0


class TestRaplIntegration:
    def test_limit_via_msr(self, sky_chip):
        sky_chip.set_rapl_limit(50.0)
        assert sky_chip.rapl.limit_w == 50.0

    def test_limit_msr_encoding(self, sky_chip):
        sky_chip.msr.write(0, msrdef.MSR_PKG_POWER_LIMIT, (1 << 15) | 400)
        assert sky_chip.rapl.limit_w == 50.0

    def test_disable_via_msr(self, sky_chip):
        sky_chip.set_rapl_limit(50.0)
        sky_chip.set_rapl_limit(None)
        assert sky_chip.rapl.limit_w is None

    def test_ryzen_has_no_rapl(self, ryzen_chip):
        with pytest.raises(PlatformError):
            ryzen_chip.set_rapl_limit(50.0)

    def test_rapl_throttles_under_load(self, sky_chip):
        for core_id in range(10):
            load_app(sky_chip, core_id, "cactusBSSN")
            sky_chip.set_requested_frequency(core_id, 2200.0)
        sky_chip.set_rapl_limit(40.0)
        sky_chip.run_ticks(3000)
        assert sky_chip.last_package_power_w < 45.0
        assert sky_chip.effective_frequency(0) < 2200.0


class TestSimultaneousPstates:
    def test_ryzen_limit_enforced(self, ryzen_chip):
        for core_id in range(4):
            load_app(ryzen_chip, core_id)
        freqs = [800.0, 1600.0, 2400.0, 3200.0]
        for core_id, freq in enumerate(freqs):
            ryzen_chip.set_requested_frequency(core_id, freq)
        with pytest.raises(PlatformError, match="simultaneous"):
            ryzen_chip.tick()

    def test_three_levels_allowed(self, ryzen_chip):
        for core_id in range(4):
            load_app(ryzen_chip, core_id)
        for core_id, freq in enumerate([800.0, 1600.0, 2400.0, 2400.0]):
            ryzen_chip.set_requested_frequency(core_id, freq)
        ryzen_chip.run_ticks(2)  # no error

    def test_idle_cores_dont_count(self, ryzen_chip):
        load_app(ryzen_chip, 0)
        for core_id, freq in enumerate(
            [800.0, 1000.0, 1200.0, 1400.0, 1600.0, 1800.0, 2000.0, 2200.0]
        ):
            ryzen_chip.set_requested_frequency(core_id, freq)
        ryzen_chip.run_ticks(2)  # only core 0 active

    def test_enforcement_can_be_disabled(self, ryzen):
        chip = Chip(ryzen, enforce_pstate_limit=False)
        for core_id in range(4):
            load_app(chip, core_id)
        for core_id, freq in enumerate([800.0, 1600.0, 2400.0, 3200.0]):
            chip.set_requested_frequency(core_id, freq)
        chip.run_ticks(2)

    def test_skylake_unrestricted(self, sky_chip):
        for core_id in range(10):
            load_app(sky_chip, core_id)
            sky_chip.set_requested_frequency(core_id, 800.0 + 100 * core_id)
        sky_chip.run_ticks(2)


class TestCounters:
    def test_energy_counter_advances(self, sky_chip):
        load_app(sky_chip, 0)
        sky_chip.run_ticks(100)
        assert sky_chip.msr.read(0, msrdef.MSR_PKG_ENERGY_STATUS) > 0

    def test_instruction_counter(self, sky_chip):
        load_app(sky_chip, 0)
        sky_chip.set_requested_frequency(0, 2200.0)
        sky_chip.run_ticks(1000)
        instr = sky_chip.msr.read(0, msrdef.IA32_FIXED_CTR0)
        assert instr == pytest.approx(
            sky_chip.cores[0].total_instructions, rel=0.01
        )

    def test_aperf_mperf_ratio_reflects_frequency(self, sky_chip):
        load_app(sky_chip, 0)
        sky_chip.set_requested_frequency(0, 1100.0)
        sky_chip.run_ticks(500)
        aperf = sky_chip.msr.read(0, msrdef.IA32_APERF)
        mperf = sky_chip.msr.read(0, msrdef.IA32_MPERF)
        tsc = sky_chip.platform.max_nominal_frequency_mhz
        assert tsc * aperf / mperf == pytest.approx(1100.0, rel=0.01)

    def test_idle_core_counters_static(self, sky_chip):
        load_app(sky_chip, 0)
        sky_chip.run_ticks(100)
        assert sky_chip.msr.read(5, msrdef.IA32_MPERF) == 0

    def test_ryzen_core_energy_published(self, ryzen_chip):
        load_app(ryzen_chip, 2)
        ryzen_chip.set_requested_frequency(2, 3000.0)
        ryzen_chip.run_ticks(200)
        assert ryzen_chip.msr.read(2, msrdef.MSR_AMD_CORE_ENERGY) > 0

    def test_perf_status_readback(self, sky_chip):
        load_app(sky_chip, 0)
        sky_chip.set_requested_frequency(0, 1800.0)
        sky_chip.run_ticks(2)
        status = sky_chip.msr.read(0, msrdef.IA32_PERF_STATUS)
        assert ((status >> 8) & 0xFF) * 100.0 == 1800.0


class TestLifecycle:
    def test_time_advances(self, chip):
        chip.run_ticks(100)
        assert chip.time_s == pytest.approx(100 * chip.tick_s)

    def test_finished_app_frees_turbo_headroom(self, sky_chip):
        tiny = spec_app("leela").with_instructions(1e9)
        for core_id in range(10):
            app = RunningApp(tiny, instance=core_id)
            sky_chip.assign_load(
                core_id, BatchCoreLoad(app, 2200.0)
            )
            sky_chip.set_requested_frequency(core_id, 3000.0)
        sky_chip.run_ticks(5)   # all running: all-core turbo 2.5
        assert sky_chip.effective_frequency(0) == 2500.0
        sky_chip.run_ticks(3000)  # most finish quickly
        assert sky_chip.active_core_count() == 0

    def test_negative_ticks_rejected(self, chip):
        from repro.errors import SimulationError

        with pytest.raises(SimulationError):
            chip.run_ticks(-1)

    def test_write_to_readonly_counter_rejected(self, sky_chip):
        with pytest.raises(MSRPermissionError):
            sky_chip.msr.write(0, msrdef.IA32_APERF, 5)
