"""Tests for the engine's batched fast path.

The batched path must be an invisible optimisation: callbacks fire at
the same simulated times with the same chip state as the per-tick slow
path, and anything that could observe per-tick ordering (a fault gate)
must force the slow path.
"""

import pytest

from repro.sim.chip import Chip
from repro.sim.engine import SimEngine


def make_engine(skylake, *, batching=True):
    engine = SimEngine(Chip(skylake))
    engine.batching = batching
    return engine


class TestBatchingEquivalence:
    def test_callback_times_match_slow_path(self, skylake):
        traces = []
        for batching in (True, False):
            engine = make_engine(skylake, batching=batching)
            calls = []
            engine.every(0.01, calls.append)
            engine.every(0.025, calls.append)
            engine.run(0.2)
            traces.append(calls)
        assert traces[0] == traces[1]

    def test_oneshot_fires_once_at_its_tick(self, skylake):
        engine = make_engine(skylake)
        calls = []
        engine.at(0.037, calls.append)
        engine.run(0.1)
        assert calls == pytest.approx([0.037])
        assert engine.batched_segments > 0

    def test_chip_state_matches_slow_path(self, skylake):
        chips = []
        for batching in (True, False):
            engine = make_engine(skylake, batching=batching)
            # a callback that mutates the chip, like the daemon does
            freqs = skylake.pstates.frequencies_mhz

            def retune(now, chip=engine.chip):
                index = int(now * 100) % len(freqs)
                chip.set_requested_frequency(0, freqs[index])
                chip.park(1, int(now * 100) % 2 == 0)

            engine.every(0.01, retune)
            engine.run(0.3)
            chips.append(engine.chip)
        fast, slow = chips
        assert fast.time_s == slow.time_s
        assert [c.effective_mhz for c in fast.cores] == [
            c.effective_mhz for c in slow.cores
        ]
        assert (
            fast.energy.package_energy_uj == slow.energy.package_energy_uj
        )

    def test_callbackless_run_is_one_segment(self, skylake):
        engine = make_engine(skylake)
        engine.run_ticks(500)
        assert engine.batched_segments == 1


class TestSlowPathForcing:
    def test_batching_false_never_batches(self, skylake):
        engine = make_engine(skylake, batching=False)
        engine.every(0.05, lambda now: None)
        engine.run(0.2)
        assert engine.batched_segments == 0

    def test_gate_forces_slow_path(self, skylake):
        engine = make_engine(skylake)
        fired = []
        engine.every(0.05, fired.append, gate=lambda now: "fire")
        engine.run(0.2)
        assert engine.batched_segments == 0
        assert len(fired) == 4

    def test_ungated_engine_batches(self, skylake):
        engine = make_engine(skylake)
        engine.every(0.05, lambda now: None)
        engine.run(0.2)
        # one segment per 0.05 s deadline at a 1 ms tick
        assert engine.batched_segments == 4
