"""Tests for P-state tables: construction, quantization, voltages."""

import pytest

from repro.errors import FrequencyError
from repro.hw.pstate import PState, PStateTable


def small_table() -> PStateTable:
    return PStateTable.from_range(
        min_mhz=800.0,
        max_mhz=1200.0,
        step_mhz=100.0,
        voltage_min_v=0.7,
        voltage_max_v=1.0,
        turbo_mhz=(1500.0,),
        turbo_voltage_v=1.1,
    )


class TestConstruction:
    def test_from_range_point_count(self):
        table = small_table()
        # 800..1200 by 100 = 5 nominal + 1 turbo
        assert len(table) == 6

    def test_frequencies_ascending(self):
        freqs = small_table().frequencies_mhz
        assert list(freqs) == sorted(freqs)

    def test_turbo_flagged(self):
        table = small_table()
        assert table[len(table) - 1].turbo
        assert not table[0].turbo

    def test_voltage_ramp_endpoints(self):
        table = small_table()
        assert table[0].voltage_v == pytest.approx(0.7)
        assert table.pstate_for_frequency(1200.0).voltage_v == pytest.approx(1.0)

    def test_turbo_voltage(self):
        assert small_table().pstate_for_frequency(1500.0).voltage_v == 1.1

    def test_default_turbo_voltage_steps_up(self):
        table = PStateTable.from_range(800, 1000, 100, 0.7, 1.0,
                                       turbo_mhz=(1200.0,))
        assert table.pstate_for_frequency(1200.0).voltage_v > 1.0

    def test_empty_table_rejected(self):
        with pytest.raises(FrequencyError):
            PStateTable([])

    def test_bad_range_rejected(self):
        with pytest.raises(FrequencyError):
            PStateTable.from_range(1200, 800, 100, 0.7, 1.0)

    def test_zero_step_rejected(self):
        with pytest.raises(FrequencyError):
            PStateTable.from_range(800, 1200, 0, 0.7, 1.0)

    def test_turbo_below_nominal_rejected(self):
        with pytest.raises(FrequencyError):
            PStateTable.from_range(800, 1200, 100, 0.7, 1.0,
                                   turbo_mhz=(1000.0,))

    def test_duplicate_frequencies_rejected(self):
        points = [
            PState(0, 800.0, 0.7),
            PState(1, 800.0, 0.8),
        ]
        with pytest.raises(FrequencyError):
            PStateTable(points)

    def test_noncontiguous_indices_rejected(self):
        points = [PState(0, 800.0, 0.7), PState(2, 900.0, 0.8)]
        with pytest.raises(FrequencyError):
            PStateTable(points)


class TestLookup:
    def test_exact_lookup(self):
        assert small_table().pstate_for_frequency(1000.0).frequency_mhz == 1000.0

    def test_off_grid_lookup_raises(self):
        with pytest.raises(FrequencyError):
            small_table().pstate_for_frequency(1050.0)

    def test_min_max_properties(self):
        table = small_table()
        assert table.min_frequency_mhz == 800.0
        assert table.max_frequency_mhz == 1500.0
        assert table.max_nominal_frequency_mhz == 1200.0

    def test_nominal_frequencies_exclude_turbo(self):
        assert 1500.0 not in small_table().nominal_frequencies_mhz()


class TestQuantize:
    def test_quantize_down(self):
        assert small_table().quantize(1050.0).frequency_mhz == 1000.0

    def test_quantize_nearest(self):
        assert small_table().quantize(1060.0, nearest=True).frequency_mhz == 1100.0

    def test_quantize_below_grid(self):
        assert small_table().quantize(100.0).frequency_mhz == 800.0

    def test_quantize_above_grid(self):
        assert small_table().quantize(9999.0).frequency_mhz == 1500.0

    def test_quantize_nominal_ignores_turbo(self):
        assert (
            small_table().quantize_nominal(1400.0).frequency_mhz == 1200.0
        )


class TestVoltageInterpolation:
    def test_on_grid(self):
        table = small_table()
        assert table.voltage_for_frequency(800.0) == pytest.approx(0.7)

    def test_between_points(self):
        table = small_table()
        v = table.voltage_for_frequency(850.0)
        assert 0.7 < v < table.pstate_for_frequency(900.0).voltage_v

    def test_below_grid_clamps(self):
        assert small_table().voltage_for_frequency(100.0) == pytest.approx(0.7)

    def test_above_grid_clamps(self):
        assert small_table().voltage_for_frequency(9999.0) == pytest.approx(1.1)

    def test_monotonic_over_range(self):
        table = small_table()
        freqs = [800 + 10 * i for i in range(71)]
        voltages = [table.voltage_for_frequency(f) for f in freqs]
        assert all(b >= a for a, b in zip(voltages, voltages[1:]))


class TestAcpiIndex:
    def test_p0_is_fastest(self):
        table = small_table()
        fastest = table.pstate_for_frequency(1500.0)
        assert table.acpi_index(fastest) == 0

    def test_slowest_has_highest_index(self):
        table = small_table()
        slowest = table.pstate_for_frequency(800.0)
        assert table.acpi_index(slowest) == len(table) - 1
