"""Tests for the per-application energy ledger."""

import pytest

from repro.core.daemon import DaemonSample
from repro.errors import ConfigError
from repro.telemetry.ledger import AppEnergyAccount, EnergyLedger


def sample(iteration, time_s, pkg_w, apps):
    """apps: label -> (freq, ips, power|None, parked)"""
    return DaemonSample(
        iteration=iteration,
        time_s=time_s,
        package_power_w=pkg_w,
        app_frequency_mhz={k: v[0] for k, v in apps.items()},
        app_ips={k: v[1] for k, v in apps.items()},
        app_power_w={k: v[2] for k, v in apps.items()},
        app_parked={k: v[3] for k, v in apps.items()},
        targets_mhz={k: v[0] for k, v in apps.items()},
    )


class TestMeasuredAttribution:
    def test_direct_per_core_energy(self):
        ledger = EnergyLedger()
        apps = {"a": (2000.0, 1e9, 5.0, False), "b": (1000.0, 5e8, 2.0, False)}
        for i in range(1, 4):
            ledger.ingest(sample(i, float(i), 16.0, apps))
        assert ledger.account("a").energy_j == pytest.approx(15.0)
        assert ledger.account("b").energy_j == pytest.approx(6.0)
        assert ledger.account("a").measured

    def test_instructions_and_efficiency(self):
        ledger = EnergyLedger()
        apps = {"a": (2000.0, 2e9, 4.0, False)}
        for i in range(1, 6):
            ledger.ingest(sample(i, float(i), 11.0, apps))
        account = ledger.account("a")
        assert account.instructions == pytest.approx(1e10)
        assert account.instructions_per_joule == pytest.approx(5e8)
        assert account.mean_power_w == pytest.approx(4.0)

    def test_package_energy_tracked(self):
        ledger = EnergyLedger()
        apps = {"a": (2000.0, 1e9, 5.0, False)}
        for i in range(1, 4):
            ledger.ingest(sample(i, float(i), 20.0, apps))
        assert ledger.package_energy_j == pytest.approx(60.0)


class TestModelAttribution:
    def test_f_cubed_split(self):
        ledger = EnergyLedger(uncore_estimate_w=7.0)
        apps = {
            "fast": (2000.0, 1e9, None, False),
            "slow": (1000.0, 5e8, None, False),
        }
        for i in range(1, 3):
            ledger.ingest(sample(i, float(i), 16.0, apps))
        fast = ledger.account("fast")
        slow = ledger.account("slow")
        assert not fast.measured
        # 9 W budget split 8:1 by f^3
        assert fast.energy_j / slow.energy_j == pytest.approx(8.0)
        assert fast.energy_j + slow.energy_j == pytest.approx(18.0)

    def test_parked_app_attributed_nothing(self):
        ledger = EnergyLedger()
        apps = {
            "run": (2000.0, 1e9, None, False),
            "parked": (0.0, 0.0, None, True),
        }
        for i in range(1, 3):
            ledger.ingest(sample(i, float(i), 16.0, apps))
        assert ledger.account("parked").energy_j == 0.0
        assert ledger.account("parked").active_s == 0.0

    def test_uncore_floor_never_negative(self):
        ledger = EnergyLedger(uncore_estimate_w=50.0)
        apps = {"a": (2000.0, 1e9, None, False)}
        ledger.ingest(sample(1, 1.0, 16.0, apps))
        assert ledger.account("a").energy_j == 0.0


class TestMidRunHealth:
    """Attribution across park/quarantine transitions mid-run.

    When the daemon parks or quarantines a core partway through a run,
    the model-based split must renormalize its f³ weights over the
    remaining runnable apps — the parked app's share flows to the
    survivors instead of vanishing — and cumulative totals must stay
    conserved (never exceeding attributable package energy) across the
    transition and the later release.
    """

    def test_weights_renormalize_when_app_parks_mid_run(self):
        ledger = EnergyLedger(uncore_estimate_w=6.0)
        both = {
            "a": (2000.0, 1e9, None, False),
            "b": (2000.0, 1e9, None, False),
        }
        only_a = {
            "a": (2000.0, 1e9, None, False),
            "b": (0.0, 0.0, None, True),
        }
        # two intervals together, then b is parked for two intervals
        ledger.ingest(sample(1, 1.0, 26.0, both))
        ledger.ingest(sample(2, 2.0, 26.0, both))
        ledger.ingest(sample(3, 3.0, 26.0, only_a))
        ledger.ingest(sample(4, 4.0, 26.0, only_a))
        # 20 W budget: split 10/10 while shared, then all 20 to a
        assert ledger.account("a").energy_j == pytest.approx(60.0)
        assert ledger.account("b").energy_j == pytest.approx(20.0)
        assert ledger.account("b").active_s == pytest.approx(2.0)

    def test_quarantine_window_attributed_nothing_then_resumes(self):
        from repro.core.daemon import HealthRecord

        ledger = EnergyLedger(uncore_estimate_w=6.0)
        run = {"a": (2000.0, 1e9, None, False)}
        quarantined = {"a": (0.0, 0.0, None, True)}
        ledger.ingest(sample(1, 1.0, 16.0, run))
        # core 0 quarantined: its app reads as parked, health says why
        bad = sample(2, 2.0, 8.0, quarantined)
        bad = DaemonSample(
            **{
                **{f: getattr(bad, f) for f in (
                    "iteration", "time_s", "package_power_w",
                    "app_frequency_mhz", "app_ips", "app_power_w",
                    "app_parked", "targets_mhz",
                )},
                "health": HealthRecord(quarantined=(0,)),
            }
        )
        ledger.ingest(bad)
        ledger.ingest(sample(3, 3.0, 16.0, run))
        account = ledger.account("a")
        # one interval before + one after; nothing during quarantine
        assert account.energy_j == pytest.approx(20.0)
        assert account.active_s == pytest.approx(2.0)

    def test_all_parked_interval_is_safe(self):
        ledger = EnergyLedger(uncore_estimate_w=6.0)
        parked = {
            "a": (0.0, 0.0, None, True),
            "b": (0.0, 0.0, None, True),
        }
        ledger.ingest(sample(1, 1.0, 9.0, parked))
        ledger.ingest(sample(2, 2.0, 9.0, parked))
        # zero total weight must not divide by zero or attribute energy
        assert ledger.account("a").energy_j == 0.0
        assert ledger.account("b").energy_j == 0.0
        assert ledger.package_energy_j == pytest.approx(18.0)

    def test_totals_conserved_across_transitions(self):
        ledger = EnergyLedger(uncore_estimate_w=5.0)
        states = [
            {"a": (2000.0, 1e9, None, False),
             "b": (1500.0, 8e8, None, False)},
            {"a": (2000.0, 1e9, None, False),
             "b": (0.0, 0.0, None, True)},
            {"a": (0.0, 0.0, None, True),
             "b": (0.0, 0.0, None, True)},
            {"a": (1800.0, 9e8, None, False),
             "b": (1500.0, 8e8, None, False)},
        ]
        for i, apps in enumerate(states, start=1):
            ledger.ingest(sample(i, float(i), 22.0, apps))
        attributed = sum(
            acct.energy_j for acct in ledger.accounts().values()
        )
        # attributed core energy never exceeds package minus uncore
        assert attributed <= ledger.package_energy_j + 1e-9
        assert attributed == pytest.approx((22.0 - 5.0) * 3.0)

    def test_quarantine_over_real_faulty_run(self):
        from repro.config import AppSpec, ExperimentConfig, build_stack

        config = ExperimentConfig(
            platform="skylake", policy="frequency-shares", limit_w=45.0,
            apps=(AppSpec("leela", shares=60.0),
                  AppSpec("cactusBSSN", shares=40.0)),
            tick_s=5e-3,
            faults="full-storm",
            fault_seed=3,
        )
        stack = build_stack(config)
        stack.engine.run(30.0)
        ledger = EnergyLedger()
        ledger.ingest_history(stack.daemon.history)
        # the storm must not break conservation: per-app totals stay
        # below the package total no matter what was parked when
        attributed = sum(
            acct.energy_j for acct in ledger.accounts().values()
        )
        assert 0.0 < attributed <= ledger.package_energy_j + 1e-9
        for acct in ledger.accounts().values():
            assert acct.energy_j >= 0.0
            assert acct.active_s <= stack.chip.time_s


class TestValidation:
    def test_time_must_advance(self):
        ledger = EnergyLedger()
        apps = {"a": (2000.0, 1e9, 5.0, False)}
        ledger.ingest(sample(1, 1.0, 16.0, apps))
        with pytest.raises(ConfigError):
            ledger.ingest(sample(2, 1.0, 16.0, apps))

    def test_unknown_account(self):
        with pytest.raises(ConfigError):
            EnergyLedger().account("ghost")

    def test_empty_account_guards(self):
        account = AppEnergyAccount("x")
        with pytest.raises(ConfigError):
            account.instructions_per_joule
        with pytest.raises(ConfigError):
            account.mean_power_w

    def test_negative_uncore_rejected(self):
        with pytest.raises(ConfigError):
            EnergyLedger(uncore_estimate_w=-1.0)


class TestEndToEnd:
    def test_ledger_over_real_daemon_run(self, skylake):
        from repro.config import AppSpec, ExperimentConfig, build_stack

        config = ExperimentConfig(
            platform="ryzen", policy="power-shares", limit_w=40.0,
            apps=(AppSpec("leela", shares=70),
                  AppSpec("cactusBSSN", shares=30)),
            tick_s=5e-3,
        )
        stack = build_stack(config)
        stack.engine.run(20.0)
        ledger = EnergyLedger()
        ledger.ingest_history(stack.daemon.history)
        leela = ledger.account("leela#0")
        cactus = ledger.account("cactusBSSN#0")
        assert leela.measured and cactus.measured
        assert leela.energy_j > 0 and cactus.energy_j > 0
        # leela is low demand: strictly better instructions per joule
        assert (
            leela.instructions_per_joule > cactus.instructions_per_joule
        )
        rows = ledger.to_rows()
        assert rows[0]["energy_j"] >= rows[1]["energy_j"]
