"""Tests for the per-application energy ledger."""

import pytest

from repro.core.daemon import DaemonSample
from repro.errors import ConfigError
from repro.telemetry.ledger import AppEnergyAccount, EnergyLedger


def sample(iteration, time_s, pkg_w, apps):
    """apps: label -> (freq, ips, power|None, parked)"""
    return DaemonSample(
        iteration=iteration,
        time_s=time_s,
        package_power_w=pkg_w,
        app_frequency_mhz={k: v[0] for k, v in apps.items()},
        app_ips={k: v[1] for k, v in apps.items()},
        app_power_w={k: v[2] for k, v in apps.items()},
        app_parked={k: v[3] for k, v in apps.items()},
        targets_mhz={k: v[0] for k, v in apps.items()},
    )


class TestMeasuredAttribution:
    def test_direct_per_core_energy(self):
        ledger = EnergyLedger()
        apps = {"a": (2000.0, 1e9, 5.0, False), "b": (1000.0, 5e8, 2.0, False)}
        for i in range(1, 4):
            ledger.ingest(sample(i, float(i), 16.0, apps))
        assert ledger.account("a").energy_j == pytest.approx(15.0)
        assert ledger.account("b").energy_j == pytest.approx(6.0)
        assert ledger.account("a").measured

    def test_instructions_and_efficiency(self):
        ledger = EnergyLedger()
        apps = {"a": (2000.0, 2e9, 4.0, False)}
        for i in range(1, 6):
            ledger.ingest(sample(i, float(i), 11.0, apps))
        account = ledger.account("a")
        assert account.instructions == pytest.approx(1e10)
        assert account.instructions_per_joule == pytest.approx(5e8)
        assert account.mean_power_w == pytest.approx(4.0)

    def test_package_energy_tracked(self):
        ledger = EnergyLedger()
        apps = {"a": (2000.0, 1e9, 5.0, False)}
        for i in range(1, 4):
            ledger.ingest(sample(i, float(i), 20.0, apps))
        assert ledger.package_energy_j == pytest.approx(60.0)


class TestModelAttribution:
    def test_f_cubed_split(self):
        ledger = EnergyLedger(uncore_estimate_w=7.0)
        apps = {
            "fast": (2000.0, 1e9, None, False),
            "slow": (1000.0, 5e8, None, False),
        }
        for i in range(1, 3):
            ledger.ingest(sample(i, float(i), 16.0, apps))
        fast = ledger.account("fast")
        slow = ledger.account("slow")
        assert not fast.measured
        # 9 W budget split 8:1 by f^3
        assert fast.energy_j / slow.energy_j == pytest.approx(8.0)
        assert fast.energy_j + slow.energy_j == pytest.approx(18.0)

    def test_parked_app_attributed_nothing(self):
        ledger = EnergyLedger()
        apps = {
            "run": (2000.0, 1e9, None, False),
            "parked": (0.0, 0.0, None, True),
        }
        for i in range(1, 3):
            ledger.ingest(sample(i, float(i), 16.0, apps))
        assert ledger.account("parked").energy_j == 0.0
        assert ledger.account("parked").active_s == 0.0

    def test_uncore_floor_never_negative(self):
        ledger = EnergyLedger(uncore_estimate_w=50.0)
        apps = {"a": (2000.0, 1e9, None, False)}
        ledger.ingest(sample(1, 1.0, 16.0, apps))
        assert ledger.account("a").energy_j == 0.0


class TestValidation:
    def test_time_must_advance(self):
        ledger = EnergyLedger()
        apps = {"a": (2000.0, 1e9, 5.0, False)}
        ledger.ingest(sample(1, 1.0, 16.0, apps))
        with pytest.raises(ConfigError):
            ledger.ingest(sample(2, 1.0, 16.0, apps))

    def test_unknown_account(self):
        with pytest.raises(ConfigError):
            EnergyLedger().account("ghost")

    def test_empty_account_guards(self):
        account = AppEnergyAccount("x")
        with pytest.raises(ConfigError):
            account.instructions_per_joule
        with pytest.raises(ConfigError):
            account.mean_power_w

    def test_negative_uncore_rejected(self):
        with pytest.raises(ConfigError):
            EnergyLedger(uncore_estimate_w=-1.0)


class TestEndToEnd:
    def test_ledger_over_real_daemon_run(self, skylake):
        from repro.config import AppSpec, ExperimentConfig, build_stack

        config = ExperimentConfig(
            platform="ryzen", policy="power-shares", limit_w=40.0,
            apps=(AppSpec("leela", shares=70),
                  AppSpec("cactusBSSN", shares=30)),
            tick_s=5e-3,
        )
        stack = build_stack(config)
        stack.engine.run(20.0)
        ledger = EnergyLedger()
        ledger.ingest_history(stack.daemon.history)
        leela = ledger.account("leela#0")
        cactus = ledger.account("cactusBSSN#0")
        assert leela.measured and cactus.measured
        assert leela.energy_j > 0 and cactus.energy_j > 0
        # leela is low demand: strictly better instructions per joule
        assert (
            leela.instructions_per_joule > cactus.instructions_per_joule
        )
        rows = ledger.to_rows()
        assert rows[0]["energy_j"] >= rows[1]["energy_j"]
