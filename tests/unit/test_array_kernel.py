"""Unit tests for the batched array engine: kernels, gathering, fallback.

The array path has exactly one contract: **bit-identical to the scalar
reference**.  These tests pin it down at every layer — the numpy
kernels against hand-rolled scalar chains, the RAPL replay against the
live limiter, the gather/commit round trip against ``advance_ticks``
on a cloned chip — plus the support gates that force the scalar slow
path, the engine selector's validation, and the cache's deliberate
blindness to the engine field.
"""

from __future__ import annotations

import json
import math

import pytest

np = pytest.importorskip("numpy")

from repro.config import AppSpec, ExperimentConfig, default_engine
from repro.errors import ConfigError, SimulationError
from repro.hw.platform import get_platform
from repro.hw.rapl import RaplLimiter
from repro.sim import kernel, soa
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad, LoadSample
from repro.sim.engine import ENGINES, SimEngine
from repro.workloads.app import RunningApp
from repro.workloads.spec import spec_app


def chip_fingerprint(chip) -> list[str]:
    """Every float observable of a chip, in exact-hex form.

    ``float.hex`` round-trips the full 64-bit pattern, so equal
    fingerprints mean equal bits — the equivalence the array engine
    promises, not approximate closeness.
    """
    parts = [chip.time_s.hex(), chip.last_package_power_w.hex()]
    parts.extend(p.hex() for p in chip.last_core_powers_w)
    parts.append(chip.energy.package_energy_joules.hex())
    for core in chip.cores:
        cpu = core.core_id
        parts.append(core.effective_mhz.hex())
        parts.append(core.total_instructions.hex())
        parts.append(core.total_energy_j.hex())
        parts.append(core.total_busy_s.hex())
        parts.append(core.total_time_s.hex())
        parts.append(str(core.parked))
        sample = core.last_sample
        parts.append(
            "none" if sample is None else
            f"{sample.instructions.hex()}|{sample.busy_fraction.hex()}|"
            f"{sample.c_eff.hex()}|{sample.done}"
        )
        parts.append(chip._aperf_cycles[cpu].hex())
        parts.append(chip._mperf_cycles[cpu].hex())
        parts.append(chip._instr_total[cpu].hex())
        parts.append(chip.energy.core_energy_joules(cpu).hex())
        parts.append(str(chip._prev_sample_done[cpu]))
        res = chip.cstates._cores[cpu]
        parts.append(res.c0_s.hex())
        parts.append(res.c1_s.hex())
        parts.append(res.c6_s.hex())
        parts.append(str(res.current))
        parts.append(str(res.transitions))
        load = core.load
        if isinstance(load, BatchCoreLoad):
            parts.append(load.app.retired_instructions.hex())
            parts.append(load.app.elapsed_s.hex())
            parts.append(str(load.app.finished))
    if chip.rapl is not None:
        parts.append(chip.rapl.average_power_w.hex())
        parts.append(chip.rapl.cap_mhz.hex())
        parts.append(str(chip.rapl.limit_w))
    return parts


def batch_chip(platform_name="skylake", *, finite_budget=None) -> Chip:
    """A chip the array path supports: SPEC apps on the first cores."""
    platform = get_platform(platform_name)
    chip = Chip(platform, tick_s=5e-3)
    ref = platform.reference_frequency_mhz
    for i, name in enumerate(["leela", "cactusBSSN", "omnetpp"]):
        model = spec_app(name, steady=True)
        chip.assign_load(
            i, BatchCoreLoad(RunningApp(model, instance=i), ref)
        )
    if finite_budget is not None:
        model = spec_app("leela").with_instructions(finite_budget)
        chip.assign_load(
            3, BatchCoreLoad(RunningApp(model, instance=9), ref)
        )
    return chip


class TestKernels:
    def test_seeded_series_matches_scalar_chain(self):
        incs = [0.1, 0.7, -0.3, 1e-9, 2.5e8, 0.1]
        series = kernel.seeded_series(3.7, np.asarray(incs))
        acc = 3.7
        expected = [acc]
        for inc in incs:
            acc += inc
            expected.append(acc)
        assert [v.hex() for v in series.tolist()] == [
            v.hex() for v in expected
        ]

    def test_seeded_accumulate_is_columnwise_sequential(self):
        rows = np.asarray([[0.1, 1e8], [0.2, -3.0], [0.4, 0.7]])
        out = kernel.seeded_accumulate(np.asarray([1.0, 2.0]), rows)
        for col in range(2):
            acc = [1.0, 2.0][col]
            for k, row in enumerate([[0.1, 1e8], [0.2, -3.0], [0.4, 0.7]]):
                acc += row[col]
                assert out[k + 1, col].hex() == acc.hex()

    def test_sequential_row_sum_matches_python_sum(self):
        rows = [[3.1, 0.2, 7.9, 1e-8], [0.0, 5.5, 2.2, 9.1]]
        out = kernel.sequential_row_sum(np.asarray(rows))
        assert [v.hex() for v in out.tolist()] == [
            sum(row).hex() for row in rows
        ]

    def test_phase_factors_match_scalar_formula(self):
        times = np.asarray([[0.0, 0.5], [1.25, 3.0]])
        ipc, pw = kernel.phase_factors(times, 10.0, 0.3, 0.05, 0.02)
        for (i, j), t in np.ndenumerate(times):
            angle = (2.0 * math.pi * t) / 10.0 + 0.3
            assert ipc[i, j].hex() == (
                1.0 + 0.05 * math.sin(angle)
            ).hex()
            assert pw[i, j].hex() == (
                1.0 + 0.02 * math.sin(angle * 0.5)
            ).hex()

    def test_voltage_rows_match_pstate_table(self, skylake):
        table = skylake.pstates
        grid_f = np.asarray(table.frequencies_mhz)
        grid_v = np.asarray(
            [table.voltage_for_frequency(f) for f in table.frequencies_mhz]
        )
        freqs = np.linspace(grid_f[0] - 100.0, grid_f[-1] + 100.0, 173)
        out = kernel.voltage_rows(freqs, grid_f, grid_v)
        for f, v in zip(freqs.tolist(), out.tolist()):
            assert v.hex() == table.voltage_for_frequency(f).hex()

    def test_first_hit_rows_sentinel(self):
        hits = np.asarray(
            [[False, True], [False, False], [True, True]]
        )
        out = kernel.first_hit_rows(hits, 3)
        assert out.tolist() == [2, 0]
        none = kernel.first_hit_rows(np.zeros((3, 2), dtype=bool), 3)
        assert none.tolist() == [3, 3]


class TestRaplReplay:
    def _limiter(self, skylake, limit_w):
        limiter = RaplLimiter(skylake)
        limiter.set_limit(limit_w)
        return limiter

    @pytest.mark.parametrize("limit_w", [None, 60.0, 40.0])
    def test_replay_matches_live_observe(self, skylake, limit_w):
        powers = [42.0, 55.0, 61.0, 58.0, 70.0, 30.0, 30.0, 65.0]
        dt = 5e-3
        live = self._limiter(skylake, limit_w)
        replayed = self._limiter(skylake, limit_w)
        observed, state = soa._replay_rapl(
            replayed, powers, dt, skylake.max_frequency_mhz, len(powers)
        )
        for pkg in powers[:observed]:
            live.observe(pkg, dt)
        replayed.restore_control_state(state)
        assert replayed.average_power_w.hex() == (
            live.average_power_w.hex()
        )
        assert replayed.cap_mhz.hex() == live.cap_mhz.hex()
        assert replayed._primed == live._primed

    def test_replay_stops_when_cap_binds(self, skylake):
        limiter = self._limiter(skylake, 40.0)
        # a huge overshoot drags the cap below max on the first observe,
        # so only that single tick is batchable
        observed, state = soa._replay_rapl(
            limiter, [500.0, 500.0, 500.0], 5e-3,
            skylake.max_frequency_mhz, 3,
        )
        assert observed == 1
        assert state[1] < skylake.max_frequency_mhz

    def test_replay_refuses_already_bound_cap(self, skylake):
        limiter = self._limiter(skylake, 40.0)
        limiter.observe(500.0, 5e-3)
        assert limiter.cap_mhz < skylake.max_frequency_mhz
        observed, _ = soa._replay_rapl(
            limiter, [10.0], 5e-3, skylake.max_frequency_mhz, 1
        )
        assert observed == 0

    def test_replay_mutates_nothing_until_restore(self, skylake):
        limiter = self._limiter(skylake, 40.0)
        before = limiter.control_state()
        soa._replay_rapl(
            limiter, [90.0, 90.0], 5e-3, skylake.max_frequency_mhz, 2
        )
        assert limiter.control_state() == before


class TestSupportGates:
    def test_batch_chip_is_supported(self):
        assert soa.chip_supports_array(batch_chip())

    def test_reference_mode_forces_scalar(self):
        chip = batch_chip()
        chip.dirty_caching = False
        assert not soa.chip_supports_array(chip)

    def test_foreign_load_forces_scalar(self):
        class WeirdLoad:
            name = "weird"
            uses_avx = False

            def advance(self, dt_s, frequency_mhz, sim_time_s):
                return LoadSample(0.0, 0.0, 0.0, done=True)

        chip = batch_chip()
        chip.assign_load(5, WeirdLoad())
        assert not soa.chip_supports_array(chip)

    def test_unsupported_chip_still_advances_exactly(self):
        chips = []
        for _ in range(2):
            chip = batch_chip()
            chip.dirty_caching = False
            chips.append(chip)
        chips[0].advance_ticks(100)
        soa.advance_chip(chips[1], 100)  # silently takes the scalar loop
        assert chip_fingerprint(chips[0]) == chip_fingerprint(chips[1])

    def test_tiny_batches_take_the_scalar_loop(self):
        a, b = batch_chip(), batch_chip()
        a.advance_ticks(soa.MIN_BATCH_TICKS - 1)
        soa.advance_chip(b, soa.MIN_BATCH_TICKS - 1)
        assert chip_fingerprint(a) == chip_fingerprint(b)


class TestArrayAdvance:
    @pytest.mark.parametrize("platform_name", ["skylake", "ryzen"])
    def test_plain_advance_bit_identical(self, platform_name):
        a = batch_chip(platform_name, finite_budget=2.0e9)
        b = batch_chip(platform_name, finite_budget=2.0e9)
        a.advance_ticks(600)
        soa.advance_chip(b, 600)
        assert chip_fingerprint(a) == chip_fingerprint(b)

    def test_mutation_schedule_bit_identical(self):
        chips = [
            batch_chip(finite_budget=1.5e9),
            batch_chip(finite_budget=1.5e9),
        ]
        grid = chips[0].platform.pstates.nominal_frequencies_mhz()
        for seg in range(8):
            for chip in chips:
                if seg == 2:
                    chip.park(6, True)
                if seg == 5:
                    chip.park(6, False)
                for i in range(len(chip.cores)):
                    chip.set_requested_frequency(
                        i, grid[(seg + i) % len(grid)]
                    )
            chips[0].advance_ticks(150)
            soa.advance_chip(chips[1], 150)
            assert chip_fingerprint(chips[0]) == chip_fingerprint(chips[1])

    def test_rapl_window_boundaries_bit_identical(self):
        chips = [batch_chip(), batch_chip()]
        for seg in range(10):
            for chip in chips:
                if seg == 2:
                    chip.set_rapl_limit(38.0)
                if seg == 7:
                    chip.set_rapl_limit(None)
            chips[0].advance_ticks(130)
            soa.advance_chip(chips[1], 130)
            assert chip_fingerprint(chips[0]) == chip_fingerprint(chips[1])

    def test_scalar_refresh_invalidates_cached_static_rows(self):
        """A scalar tick that consumes the dirty flag must not leave the
        array path holding static rows gathered from the older P-state
        view (found by the equivalence property suite)."""
        chips = [batch_chip(), batch_chip()]
        for chip in chips:
            chip.set_requested_frequency(0, 800.0)
        chips[0].advance_ticks(8)
        soa.advance_chip(chips[1], 8)  # caches static rows at 800 MHz
        for chip in chips:
            chip.set_requested_frequency(0, 900.0)
        # a sub-batch run takes the scalar loop, refreshing the view and
        # clearing the dirty flag without touching the cached rows
        chips[0].advance_ticks(1)
        soa.advance_chip(chips[1], 1)
        chips[0].advance_ticks(8)
        soa.advance_chip(chips[1], 8)
        assert chip_fingerprint(chips[0]) == chip_fingerprint(chips[1])

    def test_stacked_chips_match_individual_stepping(self):
        stacked = [batch_chip(), batch_chip("ryzen"), batch_chip()]
        solo = [batch_chip(), batch_chip("ryzen"), batch_chip()]
        soa.advance_chips(stacked, 400)
        for chip in solo:
            chip.advance_ticks(400)
        for a, b in zip(solo, stacked):
            assert chip_fingerprint(a) == chip_fingerprint(b)


class TestEngineSelector:
    def test_engine_modes(self):
        assert SimEngine(batch_chip(), engine="array").engine_mode == "array"
        assert SimEngine(batch_chip(), engine="scalar").engine_mode == (
            "scalar"
        )

    def test_unknown_engine_rejected(self):
        with pytest.raises(SimulationError):
            SimEngine(batch_chip(), engine="simd")

    def test_missing_numpy_falls_back_to_scalar(self, monkeypatch):
        monkeypatch.setattr(soa, "HAVE_NUMPY", False)
        engine = SimEngine(batch_chip(), engine="array")
        assert engine.engine_mode == "scalar"

    def test_config_validates_engine(self):
        apps = (AppSpec("leela"),)
        assert ExperimentConfig(
            platform="skylake", policy="frequency-shares",
            limit_w=50.0, apps=apps, engine="scalar",
        ).engine == "scalar"
        with pytest.raises(ConfigError):
            ExperimentConfig(
                platform="skylake", policy="frequency-shares",
                limit_w=50.0, apps=apps, engine="vector",
            )

    def test_default_engine_reads_env(self, monkeypatch):
        monkeypatch.delenv("REPRO_SIM_ENGINE", raising=False)
        assert default_engine() == "array"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "scalar")
        assert default_engine() == "scalar"
        monkeypatch.setenv("REPRO_SIM_ENGINE", "cuda")
        with pytest.raises(ConfigError):
            default_engine()

    def test_engines_tuple_is_the_contract(self):
        assert ENGINES == ("scalar", "array")


class TestCacheEngineBlindness:
    def _config(self, engine):
        return ExperimentConfig(
            platform="skylake", policy="frequency-shares", limit_w=50.0,
            apps=(AppSpec("leela"), AppSpec("cactusBSSN")), engine=engine,
        )

    def test_single_socket_keys_ignore_engine(self):
        from repro.experiments.cache import cache_key, config_to_jsonable

        scalar, array = self._config("scalar"), self._config("array")
        assert cache_key(scalar, 60.0, 20.0) == cache_key(array, 60.0, 20.0)
        assert "engine" not in json.dumps(config_to_jsonable(scalar))

    def test_cluster_keys_ignore_engine(self):
        import dataclasses

        from repro.experiments.cache import cluster_cache_key
        from repro.experiments.cluster_exp import default_cluster_config

        base = default_cluster_config()
        assert cluster_cache_key(
            dataclasses.replace(base, engine="scalar"), 120.0, 40.0
        ) == cluster_cache_key(
            dataclasses.replace(base, engine="array"), 120.0, 40.0
        )

    def test_config_roundtrip_tolerates_missing_engine(self):
        from repro.experiments.cache import (
            config_from_jsonable,
            config_to_jsonable,
        )

        data = config_to_jsonable(self._config("scalar"))
        restored = config_from_jsonable(data)
        assert restored.engine in ENGINES

    def test_standalone_reference_cache_clear_hook(self):
        from repro.experiments.runner import (
            _standalone_reference_ips,
            clear_standalone_reference_cache,
        )

        _standalone_reference_ips("skylake", "leela")
        assert _standalone_reference_ips.cache_info().currsize > 0
        clear_standalone_reference_cache()
        assert _standalone_reference_ips.cache_info().currsize == 0
