"""Tests for RAPL energy accounting and the firmware limiter."""

import pytest

from repro.errors import ConfigError, UnsupportedFeatureError
from repro.hw.rapl import RaplController, RaplLimiter, RaplLimiterConfig


class TestController:
    def test_accumulates_package_energy(self, skylake):
        ctl = RaplController(skylake)
        ctl.accumulate([1.0] * 10, 20.0, 0.5)
        assert ctl.package_energy_joules == pytest.approx(10.0)
        assert ctl.package_energy_uj == 10_000_000

    def test_accumulates_core_energy(self, ryzen):
        ctl = RaplController(ryzen)
        ctl.accumulate([2.0] * 8, 25.0, 1.0)
        assert ctl.core_energy_joules(3) == pytest.approx(2.0)
        assert ctl.core_energy_uj(3) == 2_000_000

    def test_core_energy_denied_without_feature(self, skylake):
        ctl = RaplController(skylake)
        ctl.accumulate([1.0] * 10, 17.0, 1.0)
        with pytest.raises(UnsupportedFeatureError):
            ctl.core_energy_uj(0)

    def test_wrong_vector_length_rejected(self, skylake):
        ctl = RaplController(skylake)
        with pytest.raises(ConfigError):
            ctl.accumulate([1.0] * 3, 10.0, 1.0)

    def test_uj_counter_wraps_32_bits(self, skylake):
        ctl = RaplController(skylake)
        # ~4295 J pushes the uJ counter past 2^32
        ctl.accumulate([0.0] * 10, 5000.0, 1.0)
        assert ctl.package_energy_uj == (5_000_000_000 % (1 << 32))
        assert ctl.package_energy_joules == pytest.approx(5000.0)


class TestLimiterSetup:
    def test_requires_rapl_platform(self, ryzen):
        with pytest.raises(UnsupportedFeatureError):
            RaplLimiter(ryzen)

    def test_unlimited_by_default(self, skylake):
        limiter = RaplLimiter(skylake)
        assert limiter.limit_w is None
        assert limiter.cap_mhz == skylake.max_frequency_mhz

    def test_set_limit_in_range(self, skylake):
        limiter = RaplLimiter(skylake)
        limiter.set_limit(50.0)
        assert limiter.limit_w == 50.0

    def test_set_limit_out_of_range(self, skylake):
        limiter = RaplLimiter(skylake)
        with pytest.raises(ConfigError):
            limiter.set_limit(10.0)
        with pytest.raises(ConfigError):
            limiter.set_limit(100.0)

    def test_clear_limit_restores_cap(self, skylake):
        limiter = RaplLimiter(skylake)
        limiter.set_limit(40.0)
        for _ in range(200):
            limiter.observe(70.0, 1e-3)
        assert limiter.cap_mhz < skylake.max_frequency_mhz
        limiter.set_limit(None)
        assert limiter.cap_mhz == skylake.max_frequency_mhz


class TestLimiterControl:
    def test_over_limit_lowers_cap(self, skylake):
        limiter = RaplLimiter(skylake)
        limiter.set_limit(40.0)
        for _ in range(50):
            limiter.observe(60.0, 1e-3)
        assert limiter.cap_mhz < skylake.max_frequency_mhz

    def test_under_limit_raises_cap_back(self, skylake):
        limiter = RaplLimiter(skylake)
        limiter.set_limit(40.0)
        for _ in range(200):
            limiter.observe(60.0, 1e-3)
        lowered = limiter.cap_mhz
        for _ in range(500):
            limiter.observe(30.0, 1e-3)
        assert limiter.cap_mhz > lowered

    def test_hysteresis_holds_near_limit(self, skylake):
        config = RaplLimiterConfig(hysteresis_w=1.0)
        limiter = RaplLimiter(skylake, config)
        limiter.set_limit(40.0)
        for _ in range(100):
            limiter.observe(80.0, 1e-3)
        settled = limiter.cap_mhz
        # power slightly under the limit: inside the hysteresis band
        for _ in range(100):
            limiter.observe(39.5, 1e-3)
        assert limiter.cap_mhz == pytest.approx(settled)

    def test_cap_never_below_min_frequency(self, skylake):
        limiter = RaplLimiter(skylake)
        limiter.set_limit(20.0)
        for _ in range(5000):
            limiter.observe(200.0, 1e-3)
        assert limiter.cap_mhz == skylake.min_frequency_mhz

    def test_ewma_smooths_spikes(self, skylake):
        limiter = RaplLimiter(skylake)
        limiter.observe(40.0, 1e-3)
        limiter.observe(400.0, 1e-3)
        assert limiter.average_power_w < 100.0

    def test_first_observation_primes_average(self, skylake):
        limiter = RaplLimiter(skylake)
        limiter.observe(55.0, 1e-3)
        assert limiter.average_power_w == pytest.approx(55.0)

    def test_observe_rejects_nonpositive_dt(self, skylake):
        limiter = RaplLimiter(skylake)
        with pytest.raises(ConfigError):
            limiter.observe(40.0, 0.0)

    def test_clip_fastest_first(self, skylake):
        """Cores below the cap are untouched; only fast requests clip —
        the behaviour behind paper Figs 1 and 4."""
        limiter = RaplLimiter(skylake)
        limiter.set_limit(40.0)
        for _ in range(300):
            limiter.observe(60.0, 1e-3)
        cap = limiter.cap_mhz
        assert limiter.clip(skylake.max_frequency_mhz) == cap
        slow = skylake.min_frequency_mhz
        assert limiter.clip(slow) == slow

    def test_unlimited_clip_is_identity(self, skylake):
        limiter = RaplLimiter(skylake)
        assert limiter.clip(2500.0) == 2500.0
