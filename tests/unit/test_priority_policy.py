"""Unit tests for the priority policy state machine (hand-fed telemetry)."""

import pytest

from repro.core.priority import PriorityConfig, PriorityPolicy
from repro.core.types import AppTelemetry, ManagedApp, PolicyInputs, Priority


def priority_apps(n_hp=2, n_lp=2):
    apps = []
    for i in range(n_hp):
        apps.append(ManagedApp(label=f"hp{i}", core_id=i,
                               priority=Priority.HIGH))
    for i in range(n_lp):
        apps.append(ManagedApp(label=f"lp{i}", core_id=n_hp + i,
                               priority=Priority.LOW))
    return apps


def feed(policy, package_w, iteration, granted=None):
    telem = []
    for app in policy.apps:
        parked = app.label in getattr(policy, "_last_parked", set())
        freq = (granted or {}).get(app.label, 2000.0)
        telem.append(
            AppTelemetry(
                label=app.label,
                active_frequency_mhz=freq,
                ips=1e9,
                busy_fraction=0.0 if parked else 1.0,
                power_w=None,
                parked=parked,
            )
        )
    inputs = PolicyInputs(
        iteration=iteration,
        limit_w=policy.limit_w,
        package_power_w=package_w,
        apps=tuple(telem),
        current_targets={},
    )
    decision = policy.redistribute(inputs)
    policy._last_parked = decision.parked
    return decision


class TestInitialDistribution:
    def test_hp_at_max_lp_parked(self, skylake):
        policy = PriorityPolicy(skylake, priority_apps(), 50.0)
        decision = policy.initial_distribution()
        assert decision.targets["hp0"] == skylake.max_frequency_mhz
        assert decision.parked == {"lp0", "lp1"}

    def test_all_equal_priority_treated_as_hp(self, skylake):
        apps = [
            ManagedApp(label=f"a{i}", core_id=i, priority=Priority.LOW)
            for i in range(3)
        ]
        policy = PriorityPolicy(skylake, apps, 50.0)
        decision = policy.initial_distribution()
        assert decision.parked == set()

    def test_starts_in_converge_state(self, skylake):
        policy = PriorityPolicy(skylake, priority_apps(), 50.0)
        policy.initial_distribution()
        assert policy.state == "hp-converge"


class TestConvergence:
    def test_over_limit_lowers_hp_level(self, skylake):
        policy = PriorityPolicy(skylake, priority_apps(), 50.0)
        first = policy.initial_distribution().targets["hp0"]
        decision = feed(policy, 70.0, 1, granted={"hp0": 2500.0,
                                                  "hp1": 2500.0})
        assert decision.targets["hp0"] < first

    def test_violating_level_blacklisted(self, skylake):
        policy = PriorityPolicy(skylake, priority_apps(), 50.0)
        policy.initial_distribution()
        feed(policy, 70.0, 1, granted={"hp0": 2500.0, "hp1": 2500.0})
        assert policy._blacklist  # the 2.5 GHz bin is now off-limits

    def test_trial_entered_after_stability(self, skylake):
        config = PriorityConfig(stable_iterations=2)
        policy = PriorityPolicy(skylake, priority_apps(), 50.0,
                                priority_config=config)
        policy.initial_distribution()
        for i in range(1, 6):
            feed(policy, 49.8, i, granted={"hp0": 3000.0, "hp1": 3000.0})
        assert policy.state in ("trial", "admitted")

    def test_no_lp_stays_in_converge(self, skylake):
        policy = PriorityPolicy(skylake, priority_apps(n_lp=0), 50.0)
        policy.initial_distribution()
        for i in range(1, 8):
            feed(policy, 49.9, i)
        assert policy.state == "hp-converge"


class TestTrial:
    def _to_trial(self, skylake, limit=50.0):
        config = PriorityConfig(stable_iterations=1, trial_iterations=2)
        policy = PriorityPolicy(skylake, priority_apps(), limit,
                                priority_config=config)
        policy.initial_distribution()
        iteration = 1
        while policy.state == "hp-converge":
            feed(policy, limit - 0.2, iteration,
                 granted={"hp0": 3000.0, "hp1": 3000.0})
            iteration += 1
            assert iteration < 20
        return policy, iteration

    def test_trial_unparks_lp_at_min(self, skylake):
        policy, _ = self._to_trial(skylake)
        assert policy.state == "trial"
        decision = policy._decision()
        assert decision.parked == set()
        assert decision.targets["lp0"] == skylake.min_frequency_mhz

    def test_fitting_trial_admits(self, skylake):
        policy, it = self._to_trial(skylake)
        feed(policy, 48.0, it)
        feed(policy, 48.0, it + 1)
        assert policy.state == "admitted"
        assert policy.lp_running

    def test_overbudget_trial_starves(self, skylake):
        policy, it = self._to_trial(skylake)
        feed(policy, 58.0, it)
        feed(policy, 58.0, it + 1)
        assert policy.state == "starved"
        assert policy._decision().parked == {"lp0", "lp1"}


class TestAdmitted:
    def _admitted(self, skylake):
        config = PriorityConfig(stable_iterations=1, trial_iterations=1)
        policy = PriorityPolicy(skylake, priority_apps(), 50.0,
                                priority_config=config)
        policy.initial_distribution()
        it = 1
        while policy.state != "admitted":
            feed(policy, 48.0, it, granted={"hp0": 2500.0, "hp1": 2500.0})
            it += 1
            assert it < 25
        return policy, it

    def test_residual_power_raises_lp(self, skylake):
        policy, it = self._admitted(skylake)
        before = policy._decision().targets["lp0"]
        feed(policy, 42.0, it, granted={"hp0": 2500.0, "hp1": 2500.0})
        after = policy._decision().targets["lp0"]
        assert after > before

    def test_overage_taken_from_lp_first(self, skylake):
        policy, it = self._admitted(skylake)
        # give LP some allocation first
        feed(policy, 40.0, it, granted={"hp0": 2500.0, "hp1": 2500.0})
        lp_before = policy._decision().targets["lp0"]
        hp_before = policy._decision().targets["hp0"]
        feed(policy, 55.0, it + 1, granted={"hp0": 2500.0, "hp1": 2500.0})
        decision = policy._decision()
        assert decision.targets["lp0"] < lp_before
        assert decision.targets["hp0"] == pytest.approx(hp_before)


class TestStarvedRetry:
    def test_retry_after_interval(self, skylake):
        config = PriorityConfig(
            stable_iterations=1, trial_iterations=1, retry_interval=5
        )
        policy = PriorityPolicy(skylake, priority_apps(), 50.0,
                                priority_config=config)
        policy.initial_distribution()
        it = 1
        while policy.state != "starved":
            # converge, then fail the trial with high power
            power = 49.8 if policy.state == "hp-converge" else 60.0
            feed(policy, power, it, granted={"hp0": 2500.0, "hp1": 2500.0})
            it += 1
            assert it < 30
        # stay starved until the retry interval elapses
        states = set()
        for _ in range(8):
            feed(policy, 49.8, it, granted={"hp0": 2500.0, "hp1": 2500.0})
            states.add(policy.state)
            it += 1
        assert "trial" in states or "admitted" in states
