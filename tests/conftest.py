"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hw.platform import ryzen_1700x, skylake_xeon_4114
from repro.sim.chip import Chip


@pytest.fixture(scope="session")
def skylake():
    return skylake_xeon_4114()


@pytest.fixture(scope="session")
def ryzen():
    return ryzen_1700x()


@pytest.fixture(params=["skylake", "ryzen"])
def platform(request, skylake, ryzen):
    """Parametrized over both evaluation platforms."""
    return skylake if request.param == "skylake" else ryzen


@pytest.fixture
def sky_chip(skylake):
    """A fresh Skylake chip with a 1 ms tick."""
    return Chip(skylake)


@pytest.fixture
def ryzen_chip(ryzen):
    return Chip(ryzen)


@pytest.fixture
def chip(platform):
    return Chip(platform)
