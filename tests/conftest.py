"""Shared fixtures for the test suite."""

from __future__ import annotations

import pytest

from repro.hw.platform import ryzen_1700x, skylake_xeon_4114
from repro.sim.chip import Chip


def pytest_addoption(parser):
    parser.addoption(
        "--soak",
        action="store_true",
        default=False,
        help="run the long chaos/soak tests (tier-1 skips them)",
    )
    parser.addoption(
        "--bench",
        action="store_true",
        default=False,
        help="run the performance measurements (tier-1 skips them)",
    )


def pytest_collection_modifyitems(config, items):
    gates = []
    if not config.getoption("--soak"):
        gates.append(("soak", pytest.mark.skip(
            reason="soak run: pass --soak to enable")))
    if not config.getoption("--bench"):
        gates.append(("bench", pytest.mark.skip(
            reason="perf measurement: pass --bench to enable")))
    for item in items:
        for keyword, marker in gates:
            if keyword in item.keywords:
                item.add_marker(marker)


@pytest.fixture(scope="session")
def skylake():
    return skylake_xeon_4114()


@pytest.fixture(scope="session")
def ryzen():
    return ryzen_1700x()


@pytest.fixture(params=["skylake", "ryzen"])
def platform(request, skylake, ryzen):
    """Parametrized over both evaluation platforms."""
    return skylake if request.param == "skylake" else ryzen


@pytest.fixture
def sky_chip(skylake):
    """A fresh Skylake chip with a 1 ms tick."""
    return Chip(skylake)


@pytest.fixture
def ryzen_chip(ryzen):
    return Chip(ryzen)


@pytest.fixture
def chip(platform):
    return Chip(platform)
