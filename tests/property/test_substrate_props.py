"""Property-based tests for substrate invariants: P-state quantization,
app frequency response, power model monotonicity, C-state accounting."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.cstates import CStateModel
from repro.hw.platform import ryzen_1700x, skylake_xeon_4114
from repro.sim.power_model import core_power_watts
from repro.units import percentile, quantize_down, quantize_nearest
from repro.workloads.app import AppModel

SKYLAKE = skylake_xeon_4114()
RYZEN = ryzen_1700x()

platforms = st.sampled_from([SKYLAKE, RYZEN])
frequencies = st.floats(min_value=1.0, max_value=5000.0)


@given(platforms, frequencies)
@settings(max_examples=200, deadline=None)
def test_quantize_lands_on_grid(platform, freq):
    for nearest in (False, True):
        pstate = platform.pstates.quantize(freq, nearest=nearest)
        assert pstate.frequency_mhz in platform.pstates.frequencies_mhz


@given(platforms, frequencies)
@settings(max_examples=200, deadline=None)
def test_quantize_down_never_exceeds_request(platform, freq):
    pstate = platform.pstates.quantize(freq)
    assert (
        pstate.frequency_mhz <= max(freq, platform.min_frequency_mhz) + 1e-9
    )


@given(platforms, frequencies)
@settings(max_examples=200, deadline=None)
def test_nearest_is_at_least_as_close_as_down(platform, freq):
    near = platform.pstates.quantize(freq, nearest=True).frequency_mhz
    down = platform.pstates.quantize(freq).frequency_mhz
    assert abs(near - freq) <= abs(down - freq) + 1e-9


@given(
    st.floats(min_value=0.0, max_value=0.9),
    st.floats(min_value=100.0, max_value=4000.0),
    st.floats(min_value=100.0, max_value=4000.0),
)
@settings(max_examples=200, deadline=None)
def test_speedup_monotone_and_bounded(mem_fraction, f1, f2):
    app = AppModel(
        name="p", instructions=None, mem_fraction=mem_fraction,
        c_eff=1.0, base_ipc=1.0,
    )
    lo, hi = sorted((f1, f2))
    s_lo = app.speedup(lo, 3000.0)
    s_hi = app.speedup(hi, 3000.0)
    assert s_hi >= s_lo
    if mem_fraction > 0:
        assert s_hi < 1.0 / mem_fraction  # memory wall


@given(
    platforms,
    st.floats(min_value=0.3, max_value=3.0),
    st.floats(min_value=0.0, max_value=1.0),
)
@settings(max_examples=200, deadline=None)
def test_core_power_monotone_in_frequency(platform, c_eff, busy):
    freqs = sorted(platform.pstates.frequencies_mhz)
    powers = [
        core_power_watts(platform, f, c_eff, busy, active=busy > 0)
        for f in freqs
    ]
    assert all(b >= a - 1e-9 for a, b in zip(powers, powers[1:]))


@given(st.lists(st.floats(min_value=0.0, max_value=1e6),
                min_size=1, max_size=50),
       st.floats(min_value=0.0, max_value=100.0))
@settings(max_examples=200, deadline=None)
def test_percentile_within_range(samples, pct):
    value = percentile(samples, pct)
    assert min(samples) <= value <= max(samples)


@given(st.lists(st.tuples(st.floats(min_value=0.0, max_value=1.0),
                          st.booleans()),
                min_size=1, max_size=100))
@settings(max_examples=100, deadline=None)
def test_cstate_residency_conserves_time(observations):
    model = CStateModel(1)
    dt = 1e-3
    for busy, parked in observations:
        model.observe(0, dt, busy, parked)
    from repro.hw.cstates import CState

    total = sum(model.residency(0, s) for s in CState)
    assert total == pytest.approx(len(observations) * dt, rel=1e-6)


@given(st.lists(st.floats(min_value=100.0, max_value=4000.0),
                min_size=1, max_size=8))
@settings(max_examples=100, deadline=None)
def test_pstate_select_respects_budget(targets_list):
    from repro.core.pstate_select import select_pstate_levels

    targets = {f"a{i}": value for i, value in enumerate(targets_list)}
    out = select_pstate_levels(RYZEN, targets)
    assert len(set(out.values())) <= RYZEN.simultaneous_pstates
    grid = set(RYZEN.pstates.frequencies_mhz)
    assert set(out.values()) <= grid
