"""Property tests: crash recovery reconstructs byte-identical state.

Randomized, seeded evidence for the inductive invariant the
crash-recovery layer claims:

* an arbiter snapshot/restore round trip is **state-complete** — a
  restored arbiter produces byte-identical grants to the original on
  any continuation of the report stream;
* the lease TTL boundary is exact: a renewal landing at any point of
  the step-down walk (including the last epoch before SAFE) re-enters
  GRANTED, and under pure silence the ladder code is monotone
  non-decreasing however the (empty) deliveries are interleaved with
  scrambled stale grants;
* a rebooted lease is fenced: no permutation or duplication of
  pre-fence grants can move it off SAFE, while any single post-fence
  grant re-enters GRANTED;
* readmission never double-counts: for random silence/restart
  patterns, granted plus still-reserved watts stay at or under budget
  every epoch.
"""

import json
import random

import pytest

from repro.cluster.lease import LEASE_CODES, LeaseState, NodeLease
from repro.cluster.transport import ARBITER, GRANT, Envelope, SequenceGuard

from tests.property.test_transport_props import (
    N_NODES,
    epoch_batch,
    make_arbiter,
    random_report,
    scramble,
)


def grant_env(dst, epoch, cap, seq=0):
    return Envelope(
        kind=GRANT, src=ARBITER, dst=dst, epoch=epoch, seq=seq, payload=cap
    )


def rebalance_fingerprint(arbiter, epoch, reports) -> str:
    grant = arbiter.rebalance(epoch, reports)
    return json.dumps(
        {
            "caps": {k: grant.caps_w[k] for k in sorted(grant.caps_w)},
            "degraded": list(grant.degraded),
            "reserved": {
                k: grant.reserved_w[k] for k in sorted(grant.reserved_w)
            },
        },
        sort_keys=True,
    )


@pytest.mark.parametrize("seed", range(25))
def test_restored_arbiter_rebalances_byte_identically(seed):
    # run a random report stream, snapshot mid-way, continue both the
    # original and a restored copy on the identical suffix: every
    # subsequent grant must be byte-identical
    rng = random.Random(seed)
    arbiter = make_arbiter()
    split = rng.randint(1, 4)
    for epoch in range(split):
        reports = {
            f"n{i}": random_report(rng, f"n{i}", epoch)
            for i in range(N_NODES)
            if rng.random() > 0.3  # some nodes go silent
        }
        arbiter.rebalance(epoch, reports)
    snap = arbiter.snapshot()
    twin = make_arbiter()
    twin.restore(snap)
    for epoch in range(split, split + 3):
        reports = {
            f"n{i}": random_report(rng, f"n{i}", epoch)
            for i in range(N_NODES)
            if rng.random() > 0.3
        }
        assert rebalance_fingerprint(
            twin, epoch, dict(reports)
        ) == rebalance_fingerprint(arbiter, epoch, dict(reports))
        twin.check_invariant()


@pytest.mark.parametrize("seed", range(25))
def test_snapshot_is_a_pure_copy(seed):
    # snapshotting then mutating the original must not leak into the
    # snapshot (the journal holds it across arbitrary later epochs)
    rng = random.Random(seed)
    arbiter = make_arbiter()
    arbiter.rebalance(
        0, {f"n{i}": random_report(rng, f"n{i}", 0) for i in range(N_NODES)}
    )
    snap = arbiter.snapshot()
    frozen = json.dumps(
        {k: v for k, v in snap.items() if k != "last_report"},
        sort_keys=True,
    )
    arbiter.rebalance(
        1, {f"n{i}": random_report(rng, f"n{i}", 1) for i in range(N_NODES)}
    )
    arbiter.retire(["n0"])
    assert json.dumps(
        {k: v for k, v in snap.items() if k != "last_report"},
        sort_keys=True,
    ) == frozen


@pytest.mark.parametrize("ttl", [1, 2, 3, 5])
@pytest.mark.parametrize("seed", range(10))
def test_renewal_anywhere_on_the_walk_reenters_granted(ttl, seed):
    # walk a granted lease down a random number of misses (possibly to
    # the very edge of SAFE), then deliver a renewal: GRANTED, always
    rng = random.Random(seed)
    lease = NodeLease("n0", floor_w=10.0, ttl_epochs=ttl)
    lease.observe([grant_env("n0", 0, 42.0)], 0)
    misses = rng.randint(0, ttl)  # ttl misses == last epoch before SAFE
    for epoch in range(1, misses + 1):
        lease.observe([], epoch)
    renewal_epoch = misses + 1
    cap = rng.uniform(15.0, 60.0)
    lease.observe(
        [grant_env("n0", renewal_epoch, cap, seq=1)], renewal_epoch
    )
    assert lease.state is LeaseState.GRANTED
    assert lease.cap_w == cap
    assert lease.misses == 0


@pytest.mark.parametrize("ttl", [1, 2, 3, 5])
@pytest.mark.parametrize("seed", range(10))
def test_ladder_monotone_under_stale_delivery_permutations(ttl, seed):
    # during an outage only stale pre-outage grants straggle in; in any
    # permutation/duplication they must not move the ladder, so its
    # code is monotone non-decreasing all the way to SAFE
    rng = random.Random(seed)
    lease = NodeLease("n0", floor_w=10.0, ttl_epochs=ttl)
    last_epoch = rng.randint(0, 2)
    stale = [
        grant_env("n0", e, 40.0 + e, seq=e) for e in range(last_epoch + 1)
    ]
    lease.observe(list(stale), last_epoch)
    codes = [LEASE_CODES[lease.state]]
    for epoch in range(last_epoch + 1, last_epoch + ttl + 4):
        lease.observe(scramble(rng, stale), epoch)
        codes.append(LEASE_CODES[lease.state])
    assert codes == sorted(codes), f"ladder went back up: {codes}"
    assert lease.state is LeaseState.SAFE


@pytest.mark.parametrize("seed", range(25))
def test_rebooted_lease_is_fenced_against_any_pre_crash_replay(seed):
    rng = random.Random(seed)
    fence = rng.randint(2, 6)
    lease = NodeLease("n0", floor_w=10.0, ttl_epochs=3)
    lease.observe([grant_env("n0", 1, 45.0, seq=1)], 1)
    lease.restart(fenced_epoch=fence)
    pre_crash = [
        grant_env("n0", e, rng.uniform(20.0, 60.0), seq=e)
        for e in range(fence + 1)
    ]
    for epoch in range(fence + 1, fence + 4):
        lease.observe(scramble(rng, pre_crash), epoch)
        assert lease.state is LeaseState.SAFE
        assert lease.cap_w == lease.floor_w
    fresh = grant_env("n0", fence + 4, 33.0, seq=99)
    lease.observe(
        scramble(rng, pre_crash) + [fresh], fence + 4
    )
    assert lease.state is LeaseState.GRANTED
    assert lease.cap_w == 33.0


@pytest.mark.parametrize("seed", range(15))
def test_readmission_never_double_counts_budget(seed):
    # random crash/reboot pattern over a random silence pattern: at
    # every epoch, watts granted to bidders plus watts still reserved
    # for the silent must fit the budget — including reboot epochs
    rng = random.Random(seed)
    arbiter = make_arbiter()
    budget = arbiter.budget_w
    down: set[str] = set()
    for epoch in range(12):
        for i in range(N_NODES):
            name = f"n{i}"
            if name in down:
                if rng.random() < 0.3:
                    down.discard(name)
                    arbiter.readmit(name, epoch)
            elif rng.random() < 0.15:
                down.add(name)
        reports = {
            f"n{i}": random_report(rng, f"n{i}", epoch)
            for i in range(N_NODES)
            if f"n{i}" not in down and rng.random() > 0.2
        }
        grant = arbiter.rebalance(epoch, reports)
        arbiter.check_invariant()
        total = sum(grant.caps_w.values()) + sum(
            w
            for name, w in grant.reserved_w.items()
            if name not in grant.caps_w
        )
        assert total <= budget + 1e-9, (
            f"epoch {epoch}: {total} W against {budget} W "
            f"(down={sorted(down)})"
        )


@pytest.mark.parametrize("seed", range(15))
def test_readmitted_node_bids_as_new_member(seed):
    # after readmit the arbiter must hold no reservation for the node
    # and grant it at least its floor in the same round
    rng = random.Random(seed)
    arbiter = make_arbiter()
    for epoch in range(3):
        arbiter.rebalance(
            epoch,
            {
                f"n{i}": random_report(rng, f"n{i}", epoch)
                for i in range(N_NODES)
            },
        )
    # n0 goes silent long enough to be reserved, then reboots
    for epoch in range(3, 6):
        arbiter.rebalance(
            epoch,
            {
                f"n{i}": random_report(rng, f"n{i}", epoch)
                for i in range(1, N_NODES)
            },
        )
    arbiter.readmit("n0", 6)
    grant = arbiter.rebalance(
        6,
        {f"n{i}": random_report(rng, f"n{i}", 6) for i in range(1, N_NODES)},
    )
    assert "n0" not in grant.reserved_w
    assert grant.caps_w["n0"] >= 10.0  # the configured floor
    arbiter.check_invariant()


@pytest.mark.parametrize("seed", range(10))
def test_guard_snapshot_restore_round_trip(seed):
    rng = random.Random(seed)
    guard = SequenceGuard()
    for env in epoch_batch(rng, epoch=rng.randint(1, 4)):
        guard.accept(env)
    snap = guard.snapshot()
    twin = SequenceGuard()
    twin.restore(snap)
    assert twin.snapshot() == snap
    probes = epoch_batch(rng, epoch=5)
    for env in scramble(rng, probes):
        a = guard.accept(env)
        # the twin must agree on every accept decision from here on
        assert twin.accept(env) is a
