"""Property tests: the cluster cap-sum invariant under random demand.

Whatever demand signals the nodes report — including adversarial
combinations no simulation would produce — every arbitration must
satisfy the hierarchy invariants:

* granted caps sum to at most the facility budget, exactly;
* every member's cap stays within its configured [floor, max] range;
* crashed reporters are gone from the next grant.
"""

import random

import pytest

from repro.cluster import ClusterArbiter, ClusterConfig, GroupSpec, NodeSpec
from repro.cluster.node import NodeEpochReport
from repro.config import AppSpec

APPS = tuple(AppSpec("cactusBSSN", shares=50.0) for _ in range(6))


def random_config(rng: random.Random) -> ClusterConfig:
    n_nodes = rng.randint(1, 8)
    use_groups = rng.random() < 0.5 and n_nodes >= 2
    groups = ()
    group_names = [""]
    if use_groups:
        groups = tuple(
            GroupSpec(f"g{i}", shares=rng.uniform(0.5, 4.0))
            for i in range(rng.randint(1, 3))
        )
        group_names = [g.name for g in groups]
    nodes = []
    for i in range(n_nodes):
        lo = rng.uniform(5.0, 15.0)
        nodes.append(NodeSpec(
            name=f"n{i}",
            apps=APPS,
            shares=rng.uniform(0.5, 4.0),
            group=rng.choice(group_names),
            min_cap_w=lo,
            max_cap_w=lo + rng.uniform(10.0, 50.0),
        ))
    floor_sum = sum(n.min_cap_w for n in nodes)
    budget = floor_sum + rng.uniform(0.0, 120.0)
    return ClusterConfig(budget_w=budget, nodes=tuple(nodes),
                         groups=groups)


def random_report(rng, spec, epoch, cap):
    return NodeEpochReport(
        name=spec.name,
        epoch=epoch,
        t_end_s=(epoch + 1) * 10.0,
        cap_w=cap,
        mean_power_w=rng.uniform(0.0, spec.resolved_max_cap_w()),
        throttle_pressure=rng.uniform(0.0, 1.0),
        headroom_w=rng.uniform(0.0, cap),
        parked_cores=rng.randint(0, len(spec.apps)),
        quarantined_cores=rng.randint(0, len(spec.apps)),
        samples=rng.choice([0, 1, 10, 10, 10]),
        crashed=rng.random() < 0.05,
    )


@pytest.mark.parametrize("seed", range(20))
def test_invariants_hold_under_random_demand(seed):
    rng = random.Random(seed)
    config = random_config(rng)
    arbiter = ClusterArbiter(config)
    arbiter.admit([spec.name for spec in config.nodes])
    grant = arbiter.rebalance(0, {})
    for epoch in range(1, 12):
        assert grant.total_w <= config.budget_w + 1e-9
        arbiter.check_invariant()
        for name, cap in grant.caps_w.items():
            spec = config.node(name)
            assert cap >= spec.min_cap_w - 1e-9
            assert cap <= spec.resolved_max_cap_w() + 1e-9
        reports = {
            name: random_report(rng, config.node(name), epoch - 1, cap)
            for name, cap in grant.caps_w.items()
        }
        grant = arbiter.rebalance(epoch, reports)
        for report in reports.values():
            if report.crashed:
                assert report.name not in grant.caps_w
    assert grant.total_w <= config.budget_w + 1e-9


@pytest.mark.parametrize("seed", range(8))
def test_saturated_cluster_spends_whole_budget(seed):
    """When every node demands more than its fair share, the arbiter
    should grant (essentially) the entire budget — no stranded watts."""
    rng = random.Random(1000 + seed)
    n_nodes = rng.randint(2, 6)
    nodes = tuple(
        NodeSpec(name=f"n{i}", apps=APPS,
                 shares=rng.uniform(0.5, 3.0),
                 min_cap_w=10.0, max_cap_w=60.0)
        for i in range(n_nodes)
    )
    budget = rng.uniform(n_nodes * 12.0, n_nodes * 40.0)
    config = ClusterConfig(budget_w=budget, nodes=nodes)
    arbiter = ClusterArbiter(config)
    arbiter.admit([spec.name for spec in nodes])
    grant = arbiter.rebalance(0, {})
    reports = {
        name: NodeEpochReport(
            name=name, epoch=0, t_end_s=10.0, cap_w=cap,
            mean_power_w=cap, throttle_pressure=1.0, headroom_w=0.0,
            parked_cores=0, quarantined_cores=0, samples=10,
        )
        for name, cap in grant.caps_w.items()
    }
    grant = arbiter.rebalance(1, reports)
    assert grant.total_w == pytest.approx(budget, rel=1e-6)
    assert grant.total_w <= budget + 1e-9
