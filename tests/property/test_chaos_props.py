"""Property-based chaos tests: the hardened daemon's invariants hold
for *any* seeded fault schedule, not just the curated scenarios.

Ground truth is the simulator's chip-side power, never the daemon's
(possibly lying) telemetry.  Sims are kept short (tens of simulated
seconds at a coarse tick) so the whole module stays in tier-1 budget.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.config import AppSpec, ExperimentConfig, build_stack
from repro.core.daemon import DaemonMode, ResilienceConfig
from repro.faults import FaultScenario, FaultyMSRFile
from repro.hw.rapl import decode_pkg_power_limit

#: settling window and slack mirror scripts/chaos_smoke.py
SETTLE_S = 10.0
TOLERANCE_W = 5.0

LIMITS = {"skylake": 50.0, "ryzen": 60.0}

rates = st.floats(min_value=0.0, max_value=0.10)
seeds = st.integers(min_value=0, max_value=2**32 - 1)


def storm_config(platform, scenario_kwargs, seed):
    return ExperimentConfig(
        platform=platform,
        policy="frequency-shares",
        limit_w=LIMITS[platform],
        apps=(
            AppSpec("leela", shares=90.0),
            AppSpec("cactusBSSN", shares=10.0),
        ),
        tick_s=1e-2,
        fault_seed=seed,
    ), FaultScenario(name="prop-storm", seed=seed, **scenario_kwargs)


def run_storm(platform, scenario_kwargs, seed, duration_s=30.0):
    config, scenario = storm_config(platform, scenario_kwargs, seed)
    stack = build_stack(config)
    # graft the generated scenario onto the clean stack: corrupt only
    # the daemon's MSR view, exactly as build_stack would for a named
    # scenario
    faulty = FaultyMSRFile(
        stack.chip.msr, scenario, clock=lambda: stack.chip.time_s
    )
    daemon = stack.daemon
    daemon.msr = faulty
    daemon.cpufreq.msr = faulty
    daemon.turbostat.msr = faulty
    truth = []
    stack.engine.every(
        0.1,
        lambda now, s=stack: truth.append(
            (s.chip.time_s, s.chip.last_package_power_w)
        ),
    )
    stack.engine.run(duration_s)
    return stack, truth


def windowed_violations(truth, limit_w):
    """1 s ground-truth power averages above limit + tolerance."""
    violations = []
    window, window_start = [], 0.0
    for t, p in truth:
        if t - window_start >= 1.0:
            if window and window_start >= SETTLE_S:
                avg = sum(window) / len(window)
                if avg > limit_w + TOLERANCE_W:
                    violations.append((window_start, avg))
            window, window_start = [], t
        window.append(p)
    return violations


@given(
    platform=st.sampled_from(["skylake", "ryzen"]),
    read_rate=rates,
    write_rate=rates,
    garbage_rate=rates,
    seed=seeds,
)
@settings(max_examples=10, deadline=None)
def test_power_never_exceeds_limit_under_any_storm(
    platform, read_rate, write_rate, garbage_rate, seed
):
    stack, truth = run_storm(
        platform,
        {
            "msr_read_fail_rate": read_rate,
            "msr_write_fail_rate": write_rate,
            "garbage_counter_rate": garbage_rate,
        },
        seed,
    )
    assert windowed_violations(truth, LIMITS[platform]) == []
    # the daemon survived the whole run
    assert len(stack.daemon.history) >= 25


@given(seed=seeds)
@settings(max_examples=10, deadline=None)
def test_safe_mode_always_rearms_rapl_backstop(seed):
    # total read failure forces escalation regardless of seed
    stack, _ = run_storm(
        "skylake", {"msr_read_fail_rate": 1.0}, seed, duration_s=10.0
    )
    daemon = stack.daemon
    assert daemon.mode is DaemonMode.SAFE
    # the *hardware* limiter is pulled down from TDP to the operator
    # limit — readable both from the RAPL model and the raw register
    assert stack.chip.rapl.limit_w == daemon.policy.limit_w
    import repro.hw.msr as msrdef

    raw = stack.chip.msr.read(0, msrdef.MSR_PKG_POWER_LIMIT)
    assert decode_pkg_power_limit(raw) == daemon.policy.limit_w


@given(
    platform=st.sampled_from(["skylake", "ryzen"]),
    drop_rate=st.floats(min_value=0.0, max_value=0.5),
    jitter_rate=st.floats(min_value=0.0, max_value=0.5),
    seed=seeds,
)
@settings(max_examples=8, deadline=None)
def test_tick_faults_never_breach_limit(platform, drop_rate, jitter_rate,
                                        seed):
    from repro.core.frequency_shares import FrequencySharesPolicy
    from repro.core.types import ManagedApp
    from repro.faults import TickFaultGate
    from repro.hw.platform import ryzen_1700x, skylake_xeon_4114
    from repro.sched.pinning import pin_apps
    from repro.sim.chip import Chip
    from repro.sim.engine import SimEngine
    from repro.workloads.spec import spec_app

    spec = skylake_xeon_4114() if platform == "skylake" else ryzen_1700x()
    chip = Chip(spec, tick_s=1e-2)
    engine = SimEngine(chip)
    placements = pin_apps(
        chip,
        [spec_app("leela", steady=True), spec_app("cactusBSSN", steady=True)],
    )
    managed = [
        ManagedApp(label=p.label, core_id=p.core_id, shares=s)
        for p, s in zip(placements, (90.0, 10.0))
    ]
    from repro.core.daemon import PowerDaemon

    policy = FrequencySharesPolicy(spec, managed, LIMITS[platform])
    daemon = PowerDaemon(chip, policy)
    scenario = FaultScenario(
        name="prop-ticks",
        seed=seed,
        tick_drop_rate=drop_rate,
        tick_jitter_rate=jitter_rate,
        tick_max_jitter_s=0.5,
    )
    truth = []
    engine.every(
        0.1,
        lambda now: truth.append((chip.time_s, chip.last_package_power_w)),
    )
    daemon.attach(engine, gate=TickFaultGate(scenario))
    engine.run(30.0)
    assert windowed_violations(truth, LIMITS[platform]) == []
