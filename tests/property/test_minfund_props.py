"""Property-based tests for min-funding distribution invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.minfund import (
    Claim,
    distribute_min_funding,
    pool_bounds,
    proportional_targets,
    refill_pool,
)


@st.composite
def claims_strategy(draw, max_claims=6):
    n = draw(st.integers(min_value=1, max_value=max_claims))
    claims = []
    for i in range(n):
        lo = draw(st.floats(min_value=0.0, max_value=10.0))
        hi = lo + draw(st.floats(min_value=0.0, max_value=50.0))
        current = draw(st.floats(min_value=lo, max_value=hi))
        shares = draw(st.floats(min_value=0.1, max_value=100.0))
        claims.append(Claim(f"c{i}", shares, current, lo, hi))
    return claims


@given(claims_strategy(), st.floats(min_value=-100.0, max_value=100.0))
@settings(max_examples=200, deadline=None)
def test_distribute_respects_bounds(claims, delta):
    out = distribute_min_funding(delta, claims)
    for claim in claims:
        assert claim.lo - 1e-6 <= out[claim.label] <= claim.hi + 1e-6


@given(claims_strategy(), st.floats(min_value=-100.0, max_value=100.0))
@settings(max_examples=200, deadline=None)
def test_distribute_moves_toward_delta(claims, delta):
    """The distributed amount never overshoots delta and has its sign."""
    out = distribute_min_funding(delta, claims)
    moved = sum(out[c.label] - c.current for c in claims)
    if delta >= 0:
        assert -1e-6 <= moved <= delta + 1e-6
    else:
        assert delta - 1e-6 <= moved <= 1e-6


@given(claims_strategy(), st.floats(min_value=-100.0, max_value=100.0))
@settings(max_examples=100, deadline=None)
def test_distribute_full_delta_when_capacity_allows(claims, delta):
    capacity_up = sum(c.hi - c.current for c in claims)
    capacity_down = sum(c.current - c.lo for c in claims)
    out = distribute_min_funding(delta, claims)
    moved = sum(out[c.label] - c.current for c in claims)
    if 0 <= delta <= capacity_up or -capacity_down <= delta <= 0:
        assert moved == pytest.approx(delta, abs=1e-5)


@given(claims_strategy())
@settings(max_examples=100, deadline=None)
def test_proportional_targets_unclamped_are_proportional(claims):
    """Claims whose result is strictly inside their bounds sit at a
    common funding level (allocation/shares)."""
    total = sum(c.hi for c in claims) / 2
    out = proportional_targets(total, claims)
    ratios = [
        out[c.label] / c.shares
        for c in claims
        if c.lo + 1e-6 < out[c.label] < c.hi - 1e-6
    ]
    for a in ratios:
        for b in ratios:
            assert a == pytest.approx(b, rel=1e-4, abs=1e-6)


@given(claims_strategy(), st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=100, deadline=None)
def test_refill_pool_bounded(claims, pool):
    lo, hi = pool_bounds(claims)
    out = refill_pool(min(max(pool, lo), hi), claims)
    for claim in claims:
        assert claim.lo - 1e-6 <= out[claim.label] <= claim.hi + 1e-6


@given(claims_strategy(), st.floats(min_value=0.0, max_value=200.0),
       st.floats(min_value=0.0, max_value=200.0))
@settings(max_examples=100, deadline=None)
def test_refill_pool_monotone_in_pool(claims, pool_a, pool_b):
    """A bigger pool never gives any app less."""
    lo, hi = pool_bounds(claims)
    small, large = sorted(
        (min(max(p, lo), hi) for p in (pool_a, pool_b))
    )
    out_small = refill_pool(small, claims)
    out_large = refill_pool(large, claims)
    for claim in claims:
        assert out_large[claim.label] >= out_small[claim.label] - 1e-6
