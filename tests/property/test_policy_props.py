"""Property-based tests for policy invariants: any telemetry sequence
keeps targets inside platform bounds and decisions well-formed."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.frequency_shares import FrequencySharesPolicy
from repro.core.performance_shares import PerformanceSharesPolicy
from repro.core.priority import PriorityPolicy
from repro.core.types import AppTelemetry, ManagedApp, PolicyInputs, Priority
from repro.hw.platform import skylake_xeon_4114

SKYLAKE = skylake_xeon_4114()


def make_apps(n, with_priority=False, baseline=None):
    apps = []
    for i in range(n):
        priority = (
            Priority.LOW if with_priority and i >= n // 2 else Priority.HIGH
        )
        apps.append(
            ManagedApp(
                label=f"a{i}", core_id=i, shares=float(10 * (i + 1)),
                priority=priority, baseline_ips=baseline,
            )
        )
    return apps


def build_inputs(policy, iteration, package_w, freq, ips):
    telem = tuple(
        AppTelemetry(
            label=app.label, active_frequency_mhz=freq, ips=ips,
            busy_fraction=1.0, power_w=None, parked=False,
        )
        for app in policy.apps
    )
    return PolicyInputs(
        iteration=iteration, limit_w=policy.limit_w,
        package_power_w=package_w, apps=telem, current_targets={},
    )


power_seq = st.lists(
    st.floats(min_value=5.0, max_value=120.0), min_size=1, max_size=25
)


@given(power_seq, st.integers(min_value=2, max_value=8))
@settings(max_examples=60, deadline=None)
def test_frequency_shares_targets_always_in_bounds(powers, n_apps):
    policy = FrequencySharesPolicy(SKYLAKE, make_apps(n_apps), 50.0)
    policy.initial_distribution()
    for i, p in enumerate(powers):
        decision = policy.redistribute(build_inputs(policy, i, p, 2000.0, 1e9))
        decision.validate({a.label for a in policy.apps})
        for target in decision.targets.values():
            assert SKYLAKE.min_frequency_mhz - 1e-6 <= target
            assert target <= SKYLAKE.max_frequency_mhz + 1e-6
        assert decision.parked == set()  # shares never starve


@given(power_seq)
@settings(max_examples=60, deadline=None)
def test_frequency_shares_ratio_invariant(powers):
    """Unclamped targets keep the share ratio through any power history."""
    policy = FrequencySharesPolicy(SKYLAKE, make_apps(2), 50.0)
    policy.initial_distribution()
    for i, p in enumerate(powers):
        decision = policy.redistribute(build_inputs(policy, i, p, 2000.0, 1e9))
        t1, t2 = decision.targets["a0"], decision.targets["a1"]
        clamped = (
            t1 <= SKYLAKE.min_frequency_mhz + 1e-6
            or t2 >= SKYLAKE.max_frequency_mhz - 1e-6
        )
        if not clamped:
            assert t2 / t1 == pytest.approx(2.0, rel=0.02)


@given(power_seq, st.floats(min_value=1e8, max_value=1e10))
@settings(max_examples=60, deadline=None)
def test_performance_shares_bounded(powers, ips):
    policy = PerformanceSharesPolicy(
        SKYLAKE, make_apps(3, baseline=5e9), 50.0
    )
    policy.initial_distribution()
    for i, p in enumerate(powers):
        decision = policy.redistribute(
            build_inputs(policy, i, p, 1500.0, ips)
        )
        for target in decision.targets.values():
            assert SKYLAKE.min_frequency_mhz - 1e-6 <= target
            assert target <= SKYLAKE.max_frequency_mhz + 1e-6


@given(power_seq)
@settings(max_examples=40, deadline=None)
def test_priority_hp_never_parked(powers):
    policy = PriorityPolicy(
        SKYLAKE, make_apps(4, with_priority=True), 50.0
    )
    policy.initial_distribution()
    hp_labels = {a.label for a in policy.hp_apps}
    for i, p in enumerate(powers):
        decision = policy.redistribute(
            build_inputs(policy, i, p, 2200.0, 1e9)
        )
        assert not (decision.parked & hp_labels)
        decision.validate({a.label for a in policy.apps})


@given(power_seq)
@settings(max_examples=40, deadline=None)
def test_priority_lp_floor_when_running(powers):
    policy = PriorityPolicy(
        SKYLAKE, make_apps(4, with_priority=True), 50.0
    )
    policy.initial_distribution()
    for i, p in enumerate(powers):
        decision = policy.redistribute(
            build_inputs(policy, i, p, 2200.0, 1e9)
        )
        for label, target in decision.targets.items():
            if label not in decision.parked:
                assert target >= SKYLAKE.min_frequency_mhz - 1e-6
