"""Property suite for fleet arbitration (Hypothesis).

Two families of guarantees, checked against randomly generated fleets
and randomly adversarial epochs (demand jumps, silent nodes standing in
for partitions, crashes):

* **water-filling fairness** — the exact sweep allocates max-min/
  share-proportionally: every claim strictly inside its bounds sits at
  the same per-share funding level, floors and ceilings only ever pin
  claims that the common level would push outside their bounds, and the
  filled total matches the pool exactly when the pool is feasible;
* **the hierarchy invariant at every depth** — Σ granted + Σ reserved
  never exceeds the facility budget, each domain's granted subtree sum
  never exceeds the pool the refill assigned it, rack ceilings bound
  their racks, and the incremental dirty-subtree path agrees with full
  recomputation to within the documented pool deadband on every node.
"""

import math

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cluster import ClusterConfig, NodeSpec
from repro.cluster.node import NodeEpochReport
from repro.config import AppSpec
from repro.core.minfund import Claim
from repro.fleet import DomainSpec, iter_domains, waterfill
from repro.fleet.arbiter import POOL_SLACK_W, FleetArbiter

APPS = tuple(AppSpec("cactusBSSN", shares=50.0) for _ in range(4))

#: slack for float comparisons against exact invariants.
TOL = 1e-6


# -- water-filling fairness -------------------------------------------------------

claim_strategy = st.tuples(
    st.floats(min_value=0.5, max_value=4.0),   # shares
    st.floats(min_value=1.0, max_value=20.0),  # lo
    st.floats(min_value=0.0, max_value=50.0),  # hi - lo
)


@settings(max_examples=200, deadline=None)
@given(
    bounds=st.lists(claim_strategy, min_size=1, max_size=12),
    pool_scale=st.floats(min_value=0.0, max_value=1.5),
)
def test_waterfill_is_max_min_fair(bounds, pool_scale):
    claims = [
        Claim(label=f"c{i}", shares=s, current=0.0, lo=lo, hi=lo + span)
        for i, (s, lo, span) in enumerate(bounds)
    ]
    lo_sum = sum(c.lo for c in claims)
    hi_sum = sum(c.hi for c in claims)
    pool = lo_sum + pool_scale * (hi_sum - lo_sum)
    fill = waterfill(pool, claims)

    for claim in claims:
        assert claim.lo - TOL <= fill[claim.label] <= claim.hi + TOL
    total = sum(fill.values())
    if pool <= lo_sum:
        assert total == sum(c.lo for c in claims)
        return
    if pool >= hi_sum:
        assert total == sum(c.hi for c in claims)
        return
    assert math.isclose(total, pool, rel_tol=1e-9, abs_tol=1e-6)
    # max-min fairness: claims strictly inside their bounds share one
    # per-share level; pinned claims are exactly the ones the common
    # level would push outside their bounds.
    inner_levels = [
        fill[c.label] / c.shares
        for c in claims
        if c.lo + TOL < fill[c.label] < c.hi - TOL
    ]
    if inner_levels:
        level = inner_levels[0]
        for other in inner_levels[1:]:
            assert math.isclose(level, other, rel_tol=1e-6, abs_tol=1e-6)
        for c in claims:
            if c.hi - c.lo <= 2 * TOL:
                continue  # zero-span claim: pinned by definition
            if fill[c.label] <= c.lo + TOL:
                assert c.lo / c.shares >= level - 1e-6
            elif fill[c.label] >= c.hi - TOL:
                assert c.hi / c.shares <= level + 1e-6


# -- the hierarchy invariant under adversarial epochs -----------------------------


def build_fleet(rack_sizes, ceilinged, budget_slack):
    """A 2-row fleet whose rack sizes/ceilings come from the strategy."""
    racks = []
    names = []
    for index, size in enumerate(rack_sizes):
        members = tuple(f"r{index}/n{i}" for i in range(size))
        names.extend(members)
        ceiling = None
        if index in ceilinged:
            # always above the floor sum, sometimes binding
            ceiling = size * 10.0 + size * 12.0
        racks.append(DomainSpec(
            name=f"r{index}",
            shares=1.0 + index % 3,
            nodes=members,
            ceiling_w=ceiling,
        ))
    half = max(len(racks) // 2, 1)
    rows = [DomainSpec(name="rowA", children=tuple(racks[:half]))]
    if racks[half:]:
        rows.append(DomainSpec(name="rowB", children=tuple(racks[half:])))
    topology = DomainSpec(name="facility", children=tuple(rows))
    nodes = tuple(
        NodeSpec(
            name=n,
            apps=APPS,
            shares=1.0 + (i % 2),
            min_cap_w=10.0,
            max_cap_w=45.0,
        )
        for i, n in enumerate(names)
    )
    budget = len(names) * 10.0 + budget_slack * len(names) * 35.0
    return ClusterConfig(
        budget_w=budget, nodes=nodes, topology=topology
    ), names


def make_report(name, epoch, power, throttle, crashed=False):
    return NodeEpochReport(
        name=name,
        epoch=epoch,
        t_end_s=(epoch + 1) * 1.0,
        cap_w=45.0,
        mean_power_w=power,
        throttle_pressure=throttle,
        headroom_w=max(45.0 - power, 0.0),
        parked_cores=0,
        quarantined_cores=0,
        samples=10,
        crashed=crashed,
    )


def subtree_nodes(domain):
    return [
        name for d in iter_domains(domain) for name in d.nodes
    ]


epoch_strategy = st.lists(
    st.tuples(
        st.integers(min_value=0, max_value=2**32 - 1),  # demand seed
        st.floats(min_value=0.0, max_value=1.0),        # silence rate
        st.floats(min_value=0.0, max_value=0.15),       # crash rate
    ),
    min_size=2,
    max_size=8,
)


@settings(max_examples=40, deadline=None)
@given(
    rack_sizes=st.lists(
        st.integers(min_value=1, max_value=4), min_size=1, max_size=4
    ),
    ceilinged=st.sets(st.integers(min_value=0, max_value=3)),
    budget_slack=st.floats(min_value=0.0, max_value=1.0),
    epochs=epoch_strategy,
)
def test_hierarchy_invariant_at_every_depth(
    rack_sizes, ceilinged, budget_slack, epochs
):
    import random

    config, names = build_fleet(rack_sizes, ceilinged, budget_slack)
    incremental = FleetArbiter(config)
    full = FleetArbiter(config)
    full.incremental = False
    incremental.admit(list(names))
    full.admit(list(names))

    alive = set(names)
    for epoch, (seed, silence, crash_rate) in enumerate(epochs):
        rng = random.Random(seed)
        reports = {}
        for name in sorted(alive):
            if rng.random() < silence:
                continue  # partitioned/silent this epoch
            crashed = rng.random() < crash_rate
            reports[name] = make_report(
                name,
                epoch,
                rng.uniform(0.0, 45.0),
                rng.uniform(0.0, 1.0),
                crashed=crashed,
            )
            if crashed:
                alive.discard(name)
        a = incremental.rebalance(epoch, reports)
        b = full.rebalance(epoch, reports)

        for grant, arbiter in ((a, incremental), (b, full)):
            # depth 0: Σ granted + Σ reserved never exceeds the budget
            assert grant.total_w <= config.budget_w + TOL
            arbiter.check_invariant()
            reserved = set(grant.reserved_w)
            for domain in iter_domains(config.topology):
                members = subtree_nodes(domain)
                granted = sum(
                    grant.caps_w[n] for n in members
                    if n in grant.caps_w and n not in reserved
                )
                # every deeper domain: the live grants under it fit
                # the pool the refill assigned it
                pool = grant.group_pools_w.get(domain.name)
                if pool is not None:
                    assert granted <= pool + TOL
                if domain.ceiling_w is not None:
                    assert granted <= domain.ceiling_w + TOL

        # the incremental path tracks full recomputation within the
        # documented pool deadband, node by node
        assert set(a.caps_w) == set(b.caps_w)
        for name in a.caps_w:
            assert abs(a.caps_w[name] - b.caps_w[name]) <= (
                POOL_SLACK_W + TOL
            )
        # reservations freeze previously granted caps, so they inherit
        # the same deadband rather than exact equality
        assert set(a.reserved_w) == set(b.reserved_w)
        for name in a.reserved_w:
            assert abs(a.reserved_w[name] - b.reserved_w[name]) <= (
                POOL_SLACK_W + TOL
            )
        assert b.fleet_stats.get("reused", 0) == 0

    incremental.check_invariant(full=True)
    full.check_invariant(full=True)
