"""Property tests: envelope folding is delivery-order independent.

The sequence-guard contract the lease machinery leans on: however one
epoch's control-plane messages are permuted and duplicated in flight,
the receiver folds them to the same state —

* :func:`~repro.cluster.transport.fold_reports` yields the identical
  report set, so the arbiter computes **byte-identical grants** to
  in-order delivery, and
* a :class:`~repro.cluster.lease.NodeLease` lands on the identical
  (state, cap) regardless of how its grant batch was shuffled or
  multiplied.
"""

import json
import random

import pytest

from repro.cluster import ClusterArbiter, ClusterConfig, NodeSpec
from repro.cluster.lease import NodeLease
from repro.cluster.node import NodeEpochReport
from repro.cluster.transport import (
    ARBITER,
    DEMAND,
    GRANT,
    Envelope,
    SequenceGuard,
    fold_reports,
)
from repro.config import AppSpec

APPS = tuple(AppSpec("cactusBSSN", shares=50.0) for _ in range(6))

N_NODES = 4


def make_arbiter() -> ClusterArbiter:
    nodes = tuple(
        NodeSpec(
            name=f"n{i}",
            apps=APPS,
            shares=float(1 + i % 2),
            min_cap_w=10.0,
            max_cap_w=60.0,
        )
        for i in range(N_NODES)
    )
    config = ClusterConfig(budget_w=150.0, nodes=nodes)
    arbiter = ClusterArbiter(config)
    arbiter.admit([spec.name for spec in nodes])
    return arbiter


def random_report(rng: random.Random, name: str, epoch: int) -> NodeEpochReport:
    power = rng.uniform(5.0, 60.0)
    return NodeEpochReport(
        name=name,
        epoch=epoch,
        t_end_s=(epoch + 1) * 10.0,
        cap_w=rng.uniform(10.0, 60.0),
        mean_power_w=power,
        throttle_pressure=rng.random(),
        headroom_w=max(0.0, 60.0 - power),
        parked_cores=rng.randint(0, 2),
        quarantined_cores=rng.randint(0, 2),
        samples=rng.randint(1, 10),
    )


def epoch_batch(rng: random.Random, epoch: int) -> list[Envelope]:
    """One epoch's demand envelopes, possibly with delayed stragglers."""
    batch = []
    for i in range(N_NODES):
        name = f"n{i}"
        batch.append(Envelope(
            kind=DEMAND, src=name, dst=ARBITER, epoch=epoch, seq=epoch,
            payload=random_report(rng, name, epoch),
        ))
        if rng.random() < 0.4 and epoch > 0:
            # a straggler from the previous epoch rides along
            batch.append(Envelope(
                kind=DEMAND, src=name, dst=ARBITER, epoch=epoch - 1,
                seq=epoch - 1, payload=random_report(rng, name, epoch - 1),
            ))
    return batch


def scramble(
    rng: random.Random, batch: list[Envelope]
) -> list[Envelope]:
    """A random permutation with random duplication of a batch."""
    scrambled = list(batch)
    for env in batch:
        for _ in range(rng.randint(0, 2)):
            scrambled.append(env)
    rng.shuffle(scrambled)
    return scrambled


def grants_fingerprint(arbiter: ClusterArbiter, folded: dict) -> str:
    grant = arbiter.rebalance(
        max((env_epoch for env_epoch in (r.epoch + 1 for r in folded.values())),
            default=0),
        folded,
    )
    return json.dumps(
        {
            "caps": {k: grant.caps_w[k] for k in sorted(grant.caps_w)},
            "degraded": list(grant.degraded),
            "reserved": {
                k: grant.reserved_w[k] for k in sorted(grant.reserved_w)
            },
        },
        sort_keys=True,
    )


@pytest.mark.parametrize("seed", range(25))
def test_fold_is_permutation_and_duplication_invariant(seed):
    rng = random.Random(seed)
    batch = epoch_batch(rng, epoch=3)
    baseline = fold_reports(list(batch), SequenceGuard())
    for _ in range(4):
        folded = fold_reports(scramble(rng, batch), SequenceGuard())
        assert folded == baseline


@pytest.mark.parametrize("seed", range(25))
def test_scrambled_delivery_yields_byte_identical_grants(seed):
    rng = random.Random(seed)
    batch = epoch_batch(rng, epoch=1)
    in_order = grants_fingerprint(
        make_arbiter(), fold_reports(list(batch), SequenceGuard())
    )
    for _ in range(4):
        scrambled = grants_fingerprint(
            make_arbiter(), fold_reports(scramble(rng, batch), SequenceGuard())
        )
        assert scrambled == in_order


@pytest.mark.parametrize("seed", range(25))
def test_multi_epoch_fold_keeps_newest_per_node(seed):
    # folding two epochs' worth through one guard in any order keeps
    # exactly the newest report per node
    rng = random.Random(seed)
    early = epoch_batch(rng, epoch=1)
    late = epoch_batch(rng, epoch=2)
    combined = scramble(rng, early + late)
    folded = fold_reports(combined, SequenceGuard())
    assert sorted(folded) == [f"n{i}" for i in range(N_NODES)]
    for payload in folded.values():
        # an epoch-2 envelope exists for every node, so the newest
        # accepted report is always the epoch-2 one
        assert payload.epoch == 2


@pytest.mark.parametrize("seed", range(25))
def test_lease_state_is_delivery_order_invariant(seed):
    rng = random.Random(seed)
    grants = [
        Envelope(kind=GRANT, src=ARBITER, dst="n0", epoch=e, seq=e,
                 payload=rng.uniform(10.0, 60.0))
        for e in range(rng.randint(1, 4))
    ]
    baseline = NodeLease("n0", floor_w=10.0, ttl_epochs=3)
    baseline.observe(list(grants), len(grants))
    for _ in range(4):
        lease = NodeLease("n0", floor_w=10.0, ttl_epochs=3)
        lease.observe(scramble(rng, grants), len(grants))
        assert lease.state is baseline.state
        assert lease.cap_w == baseline.cap_w
        assert lease.granted_epoch == baseline.granted_epoch
