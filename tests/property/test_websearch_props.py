"""Property-based tests on the websearch queueing model's invariants."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.workloads.websearch import WebsearchCluster, WebsearchConfig


def drive(cluster, steps, freqs, dt=5e-3):
    for _ in range(steps):
        cluster.advance(dt, freqs)


@st.composite
def cluster_setup(draw):
    n_cores = draw(st.integers(min_value=1, max_value=4))
    n_users = draw(st.integers(min_value=5, max_value=60))
    seed = draw(st.integers(min_value=0, max_value=999))
    freq = draw(st.floats(min_value=600.0, max_value=3800.0))
    config = WebsearchConfig(
        n_users=n_users, think_time_s=0.3, seed=seed,
        service_cpu_s=0.004, service_mem_s=0.002,
    )
    return list(range(n_cores)), config, freq


@given(cluster_setup(), st.integers(min_value=50, max_value=600))
@settings(max_examples=40, deadline=None)
def test_latencies_positive_and_time_consistent(setup, steps):
    cores, config, freq = setup
    cluster = WebsearchCluster(cores, config)
    drive(cluster, steps, {c: freq for c in cores})
    assert all(lat > 0 for lat in cluster.latencies())
    # no latency can exceed the total simulated time
    assert all(lat <= cluster.now + 1e-9 for lat in cluster.latencies())


@given(cluster_setup(), st.integers(min_value=50, max_value=600))
@settings(max_examples=40, deadline=None)
def test_in_flight_requests_bounded_by_users(setup, steps):
    cores, config, freq = setup
    cluster = WebsearchCluster(cores, config)
    drive(cluster, steps, {c: freq for c in cores})
    in_service = sum(
        1 for c in cores if cluster._cores[c].current is not None
    )
    assert cluster.queue_length() + in_service <= config.n_users


@given(cluster_setup(), st.integers(min_value=50, max_value=400))
@settings(max_examples=30, deadline=None)
def test_busy_time_never_exceeds_wall_time(setup, steps):
    cores, config, freq = setup
    cluster = WebsearchCluster(cores, config)
    drive(cluster, steps, {c: freq for c in cores})
    for core in cores:
        assert cluster.core_utilization(core) <= 1.0 + 1e-9


@given(cluster_setup())
@settings(max_examples=20, deadline=None)
def test_deterministic_replay(setup):
    cores, config, freq = setup
    a = WebsearchCluster(cores, config)
    b = WebsearchCluster(cores, config)
    drive(a, 200, {c: freq for c in cores})
    drive(b, 200, {c: freq for c in cores})
    assert a.completed_requests == b.completed_requests
    assert a.latencies() == b.latencies()


@given(cluster_setup(), st.integers(min_value=100, max_value=400))
@settings(max_examples=20, deadline=None)
def test_closed_loop_user_conservation(setup, steps):
    """Every user is always in exactly one place: thinking, queued, or
    in service — the defining invariant of the closed-loop model."""
    cores, config, freq = setup
    cluster = WebsearchCluster(cores, config)
    drive(cluster, steps, {c: freq for c in cores})
    thinking = len(cluster._thinkers)
    queued = cluster.queue_length()
    in_service = sum(
        1 for c in cores if cluster._cores[c].current is not None
    )
    assert thinking + queued + in_service == config.n_users


@given(cluster_setup(), st.integers(min_value=600, max_value=1200))
@settings(max_examples=10, deadline=None)
def test_long_run_throughput_near_interactive_law(setup, steps):
    """Over a long window, throughput approaches N/(Z+R) and cannot
    exceed N/Z by more than sampling noise (interactive response-time
    law)."""
    cores, config, freq = setup
    cluster = WebsearchCluster(cores, config)
    drive(cluster, steps, {c: freq for c in cores})
    ceiling = config.n_users / config.think_time_s
    assert cluster.throughput() <= ceiling * 1.5
