"""Property tests: the array engine is bit-identical to the scalar one.

Two chips fed the same schedule — one stepped tick-by-tick by the
scalar reference loop, one through :func:`repro.sim.soa.advance_chip`'s
batched array path — must agree on *every* float observable, to the
bit, after every segment.  Schedules draw from everything the daemon
does at its cadence: P-state retargets, park/unpark (the quarantine
and consolidation mechanisms both reduce to parking at chip level),
RAPL limit programming and removal (window boundaries where the
firmware control loop engages mid-batch), and uneven run lengths that
misalign batch edges with behaviour changes.

The same property is asserted one level up through
:class:`~repro.sim.engine.SimEngine`, where callback deadlines carve
the run into batches.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.hw.platform import skylake_xeon_4114
from repro.sim import soa
from repro.sim.chip import Chip
from repro.sim.core import BatchCoreLoad
from repro.sim.engine import SimEngine
from repro.workloads.app import RunningApp
from repro.workloads.spec import spec_app

from tests.unit.test_array_kernel import chip_fingerprint

SKYLAKE = skylake_xeon_4114()
FREQS = SKYLAKE.pstates.frequencies_mhz

#: benchmarks spanning compute-bound, memory-bound, and phased models.
BENCHMARKS = ("leela", "cactusBSSN", "omnetpp", "gcc", "imagick")

#: in-range RAPL limits plus None (limiting disabled).
RAPL_LIMITS = (None, 25.0, 38.0, 50.0, 70.0)

ops = st.one_of(
    st.tuples(st.just("freq"),
              st.integers(0, SKYLAKE.n_cores - 1),
              st.sampled_from(FREQS)),
    st.tuples(st.just("park"),
              st.integers(0, SKYLAKE.n_cores - 1),
              st.booleans()),
    st.tuples(st.just("rapl"),
              st.sampled_from(RAPL_LIMITS),
              st.none()),
    st.tuples(st.just("run"), st.integers(1, 300), st.none()),
)

placements = st.dictionaries(
    st.integers(0, SKYLAKE.n_cores - 1),
    st.tuples(
        st.sampled_from(BENCHMARKS),
        # None -> steady service; a budget -> finishes mid-run
        st.one_of(st.none(), st.floats(min_value=1e8, max_value=4e9)),
    ),
    min_size=1,
    max_size=6,
)


def build_chip(placement) -> Chip:
    chip = Chip(SKYLAKE, tick_s=5e-3)
    ref = SKYLAKE.reference_frequency_mhz
    for core_id, (name, budget) in placement.items():
        model = spec_app(name, steady=budget is None)
        if budget is not None:
            model = model.with_instructions(budget)
        chip.assign_load(
            core_id, BatchCoreLoad(RunningApp(model, instance=core_id), ref)
        )
    return chip


def apply(chip, op, *, array: bool) -> None:
    kind, a, b = op
    if kind == "freq":
        chip.set_requested_frequency(a, b)
    elif kind == "park":
        chip.park(a, b)
    elif kind == "rapl":
        chip.set_rapl_limit(a)
    elif array:
        soa.advance_chip(chip, a)
    else:
        chip.advance_ticks(a)


@given(placements, st.lists(ops, min_size=1, max_size=25))
@settings(max_examples=50, deadline=None)
def test_array_advance_is_bit_identical(placement, schedule):
    scalar = build_chip(placement)
    array = build_chip(placement)
    for op in schedule:
        apply(scalar, op, array=False)
        apply(array, op, array=True)
        assert chip_fingerprint(scalar) == chip_fingerprint(array)


@given(
    placements,
    st.lists(st.sampled_from(FREQS), min_size=1, max_size=8),
    st.lists(st.sampled_from(RAPL_LIMITS), min_size=1, max_size=4),
    st.integers(5, 80),    # callback period in ticks
    st.integers(50, 900),  # total ticks
)
@settings(max_examples=30, deadline=None)
def test_engine_batches_are_bit_identical(
    placement, freq_cycle, limit_cycle, period, total
):
    chips = []
    for mode in ("scalar", "array"):
        engine = SimEngine(build_chip(placement), engine=mode)
        beat = [0]

        def retune(now, chip=engine.chip, beat=beat):
            chip.set_requested_frequency(
                0, freq_cycle[beat[0] % len(freq_cycle)]
            )
            chip.park(1, beat[0] % 2 == 0)
            chip.set_rapl_limit(limit_cycle[beat[0] % len(limit_cycle)])
            beat[0] += 1

        engine.every(period * engine.chip.tick_s, retune)
        engine.run_ticks(total)
        engine.chip.flush_counters()
        chips.append(engine.chip)
    assert chip_fingerprint(chips[0]) == chip_fingerprint(chips[1])


@pytest.mark.soak
@given(placements, st.lists(ops, min_size=20, max_size=120))
@settings(max_examples=120, deadline=None)
def test_array_advance_is_bit_identical_soak(placement, schedule):
    """Long-schedule variant: many segments, only a final fingerprint
    compare per op batch (the per-op assert above already localizes
    failures; this one buys depth)."""
    scalar = build_chip(placement)
    array = build_chip(placement)
    for op in schedule:
        apply(scalar, op, array=False)
        apply(array, op, array=True)
    assert chip_fingerprint(scalar) == chip_fingerprint(array)
