"""Property tests: the chip's dirty-flag fast path is bit-identical.

Two chips fed the same schedule of mutations — one with dirty-flag
caching on (the default), one recomputing the P-state view every tick
(``dirty_caching=False``) — must agree on *every* observable after every
segment: effective frequencies, package energy, APERF/MPERF/instruction
counters, and power.  Schedules include finishing loads, whose
done-transition changes the active-core count (and hence the turbo
ceiling) without any software mutation.
"""

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.hw.platform import skylake_xeon_4114
from repro.sim.chip import Chip
from repro.sim.core import LoadSample
from repro.sim.engine import SimEngine

SKYLAKE = skylake_xeon_4114()
FREQS = SKYLAKE.pstates.frequencies_mhz


class FiniteLoad:
    """Deterministic synthetic load that retires a fixed instruction
    budget and then goes idle (exercising the done transition)."""

    name = "finite"

    def __init__(self, budget, ipc, uses_avx):
        self.remaining = budget
        self.ipc = ipc
        self.uses_avx = uses_avx

    def advance(self, dt_s, frequency_mhz, sim_time_s):
        if self.remaining <= 0.0:
            return LoadSample(0.0, 0.0, 0.0, done=True)
        retired = min(
            self.remaining, frequency_mhz * 1e6 * dt_s * self.ipc
        )
        self.remaining -= retired
        return LoadSample(
            instructions=retired,
            busy_fraction=1.0,
            c_eff=1.1,
            done=self.remaining <= 0.0,
        )


load_specs = st.tuples(
    st.floats(min_value=1e6, max_value=5e9),  # instruction budget
    st.floats(min_value=0.3, max_value=2.0),  # ipc
    st.booleans(),                            # uses_avx
)

ops = st.one_of(
    st.tuples(st.just("freq"),
              st.integers(0, SKYLAKE.n_cores - 1),
              st.sampled_from(FREQS)),
    st.tuples(st.just("park"),
              st.integers(0, SKYLAKE.n_cores - 1),
              st.booleans()),
    st.tuples(st.just("run"), st.integers(1, 200), st.none()),
)


def apply(chip, op):
    kind, a, b = op
    if kind == "freq":
        chip.set_requested_frequency(a, b)
    elif kind == "park":
        chip.park(a, b)
    else:
        chip.run_ticks(a)


def observables(chip):
    chip.flush_counters()
    return (
        chip.time_s,
        [c.effective_mhz for c in chip.cores],
        chip.energy.package_energy_uj,
        chip.last_package_power_w,
        list(chip._aperf_cycles),
        list(chip._mperf_cycles),
        list(chip._instr_total),
    )


@given(
    st.dictionaries(
        st.integers(0, SKYLAKE.n_cores - 1), load_specs, max_size=6
    ),
    st.lists(ops, min_size=1, max_size=30),
)
@settings(max_examples=60, deadline=None)
def test_dirty_caching_is_bit_identical(loads, schedule):
    fast = Chip(SKYLAKE)
    slow = Chip(SKYLAKE)
    slow.dirty_caching = False
    for chip in (fast, slow):
        for core_id, (budget, ipc, avx) in loads.items():
            chip.assign_load(core_id, FiniteLoad(budget, ipc, avx))
    for op in schedule:
        apply(fast, op)
        apply(slow, op)
        assert observables(fast) == observables(slow)


@given(
    st.dictionaries(
        st.integers(0, SKYLAKE.n_cores - 1), load_specs, max_size=6
    ),
    st.lists(st.sampled_from(FREQS), min_size=1, max_size=8),
    st.integers(5, 60),   # callback period in ticks
    st.integers(50, 600),  # total ticks
)
@settings(max_examples=40, deadline=None)
def test_engine_batching_is_bit_identical(loads, freq_cycle, period, total):
    chips = []
    for batching in (True, False):
        engine = SimEngine(Chip(SKYLAKE))
        engine.batching = batching
        for core_id, (budget, ipc, avx) in loads.items():
            engine.chip.assign_load(core_id, FiniteLoad(budget, ipc, avx))
        beat = [0]

        def retune(now, chip=engine.chip, beat=beat):
            chip.set_requested_frequency(
                0, freq_cycle[beat[0] % len(freq_cycle)]
            )
            chip.park(1, beat[0] % 2 == 0)
            beat[0] += 1

        engine.every(period * engine.chip.tick_s, retune)
        engine.run_ticks(total)
        chips.append(engine.chip)
    assert observables(chips[0]) == observables(chips[1])


def test_gate_forces_per_tick_fault_semantics():
    """With a gate registered, batching must not happen at all: the
    fault stream is drawn per deadline in per-tick order."""
    engine = SimEngine(Chip(SKYLAKE))
    engine.every(0.02, lambda now: None, gate=lambda now: "fire")
    engine.run_ticks(300)
    assert engine.batched_segments == 0
