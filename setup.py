"""Thin shim so editable installs work in offline environments that lack
the `wheel` package (metadata lives in pyproject.toml)."""
from setuptools import setup

setup()
